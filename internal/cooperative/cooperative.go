// Package cooperative implements the geo-replicated backup use case of
// §IV.A: a two-tier community storage network where users keep their data
// blocks on their own computers and spread entangled parity blocks over
// remote storage nodes.
//
// The upper tier is the Broker: it splits files into d-blocks, entangles
// them (keeping the strand heads in memory — the §IV.A footprint of one
// p-block per strand), and uploads the α parities of every block to storage
// nodes chosen by hashing the block key. The lower tier is any set of
// NodeStore implementations — in-memory nodes for tests and simulations, or
// transport.Client values for real TCP storage nodes.
//
// Repair follows Table III: to regenerate a parity lost with a faulty node,
// the broker obtains the dp-tuple ids from the lattice, chooses a p-block,
// computes its location key, fetches it from the responsible node, and
// XORs it with the local d-block. Data blocks lost with the user's machine
// are regenerated from pp-tuples fetched from two nodes. Whole-lattice
// repair reuses the round-based engine of internal/entangle through a
// network-backed store adapter.
package cooperative

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"aecodes/internal/blockstore"
	"aecodes/internal/entangle"
	"aecodes/internal/lattice"
	"aecodes/internal/placement"
)

// ErrNotFound is returned by NodeStore implementations for missing blocks.
var ErrNotFound = errors.New("cooperative: block not found")

// NodeStore is one remote storage node. transport.Client satisfies this
// interface up to error mapping; InMemoryNode provides a local test double.
type NodeStore interface {
	// Get fetches a block; implementations return ErrNotFound (or any
	// error) when the block is unavailable.
	Get(key string) ([]byte, error)
	// Put stores a block.
	Put(key string, data []byte) error
}

// BatchNodeStore is an optional NodeStore extension for bulk fetches.
// transport.Client and transport.PoolClient both provide GetMany; nodes
// that implement it let the broker fetch a whole repair round in one
// request frame per node instead of one round-trip per block.
type BatchNodeStore interface {
	NodeStore
	// GetMany returns one entry per key in order; missing blocks are nil.
	// A missing block is not an error.
	GetMany(keys []string) ([][]byte, error)
}

// batchChunk bounds one GetMany call by entry count (conservatively below
// transport.MaxBatchEntries = 4096, without importing that package), and
// batchChunkBytes bounds the expected response size so a chunk of large
// blocks cannot overflow a transport frame (MaxPayloadLen = 64 MiB) and
// get the whole node misreported as unreachable.
const (
	batchChunk      = 1024
	batchChunkBytes = 32 << 20
)

// chunkEntries returns how many blocks of the given size fit one batched
// fetch, always at least 1.
func chunkEntries(blockSize int) int {
	perEntry := blockSize + 64 // content plus generous per-entry framing
	n := batchChunkBytes / perEntry
	if n < 1 {
		return 1
	}
	if n > batchChunk {
		return batchChunk
	}
	return n
}

// InMemoryNode is a NodeStore backed by a map, with a switchable
// availability flag to simulate node failures. It is safe for concurrent
// use and counts Get/GetMany calls so tests can assert traffic shapes.
type InMemoryNode struct {
	mu         sync.RWMutex
	blocks     map[string][]byte
	down       bool
	getCalls   int
	batchCalls int
}

var _ BatchNodeStore = (*InMemoryNode)(nil)

// NewInMemoryNode returns an empty, available node.
func NewInMemoryNode() *InMemoryNode {
	return &InMemoryNode{blocks: make(map[string][]byte)}
}

// SetDown toggles the node's availability.
func (n *InMemoryNode) SetDown(down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down = down
}

// Get implements NodeStore.
func (n *InMemoryNode) Get(key string) ([]byte, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.getCalls++
	if n.down {
		return nil, fmt.Errorf("cooperative: node unavailable")
	}
	b, ok := n.blocks[key]
	if !ok {
		return nil, ErrNotFound
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out, nil
}

// GetMany implements BatchNodeStore: one simulated request frame however
// many keys are asked for.
func (n *InMemoryNode) GetMany(keys []string) ([][]byte, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.batchCalls++
	if n.down {
		return nil, fmt.Errorf("cooperative: node unavailable")
	}
	out := make([][]byte, len(keys))
	for i, key := range keys {
		if b, ok := n.blocks[key]; ok {
			cp := make([]byte, len(b))
			copy(cp, b)
			out[i] = cp
		}
	}
	return out, nil
}

// GetCalls returns the number of single-block Get requests served.
func (n *InMemoryNode) GetCalls() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.getCalls
}

// BatchCalls returns the number of GetMany requests served.
func (n *InMemoryNode) BatchCalls() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.batchCalls
}

// ResetCounters zeroes the request counters.
func (n *InMemoryNode) ResetCounters() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.getCalls, n.batchCalls = 0, 0
}

// Put implements NodeStore.
func (n *InMemoryNode) Put(key string, data []byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return fmt.Errorf("cooperative: node unavailable")
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	n.blocks[key] = cp
	return nil
}

// Len returns the number of blocks held (even while down).
func (n *InMemoryNode) Len() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.blocks)
}

// Broker is a user's encoding/decoding agent. Brokers are not safe for
// concurrent use; serialise access externally if needed.
type Broker struct {
	user      string
	params    lattice.Params
	blockSize int
	enc       *entangle.Encoder
	rep       *entangle.Repairer
	nodes     []NodeStore
	placer    *placement.KeyHash
	local     map[int][]byte // the user's own d-blocks
	count     int            // blocks backed up so far
}

// NewBroker returns a broker for one user's lattice over the given nodes.
// user namespaces all keys so multiple lattices coexist in the system.
func NewBroker(user string, params lattice.Params, blockSize int, nodes []NodeStore) (*Broker, error) {
	if user == "" {
		return nil, errors.New("cooperative: empty user")
	}
	if len(nodes) == 0 {
		return nil, errors.New("cooperative: need at least one storage node")
	}
	enc, err := entangle.NewEncoder(params, blockSize)
	if err != nil {
		return nil, err
	}
	rep, err := entangle.NewRepairer(params)
	if err != nil {
		return nil, err
	}
	placer, err := placement.NewKeyHash(len(nodes))
	if err != nil {
		return nil, err
	}
	return &Broker{
		user:      user,
		params:    params,
		blockSize: blockSize,
		enc:       enc,
		rep:       rep,
		nodes:     nodes,
		placer:    placer,
		local:     make(map[int][]byte),
	}, nil
}

// BlockSize returns the broker's block size.
func (b *Broker) BlockSize() int { return b.blockSize }

// Count returns the number of blocks backed up.
func (b *Broker) Count() int { return b.count }

// dataKey and parityKey derive the system-wide block names: "a value
// derived from the node id and the block position in the lattice" (§IV.A).
func (b *Broker) dataKey(i int) string { return b.user + "/" + blockstore.DataKey(i) }

func (b *Broker) parityKey(e lattice.Edge) string {
	return b.user + "/" + blockstore.ParityKey(e)
}

// nodeFor returns the storage node responsible for a key (Table III step
// 3, "compute location key").
func (b *Broker) nodeFor(key string) NodeStore {
	return b.nodes[b.placer.PlaceKey(key)]
}

// Backup entangles one data block: the block stays local, its α parities
// are uploaded to their responsible nodes. It returns the lattice position.
func (b *Broker) Backup(data []byte) (int, error) {
	if len(data) != b.blockSize {
		return 0, fmt.Errorf("cooperative: block has %d bytes, want %d", len(data), b.blockSize)
	}
	ent, err := b.enc.Entangle(data)
	if err != nil {
		return 0, err
	}
	for _, p := range ent.Parities {
		key := b.parityKey(p.Edge)
		if err := b.nodeFor(key).Put(key, p.Data); err != nil {
			return 0, fmt.Errorf("cooperative: uploading %s: %w", key, err)
		}
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	b.local[ent.Index] = cp
	b.count = ent.Index
	return ent.Index, nil
}

// BackupStream splits r into blockSize blocks (zero-padding the tail) and
// backs up each. It returns the positions written and the total bytes read.
func (b *Broker) BackupStream(r io.Reader) (positions []int, n int64, err error) {
	buf := make([]byte, b.blockSize)
	for {
		read, rerr := io.ReadFull(r, buf)
		if rerr == io.EOF {
			return positions, n, nil
		}
		if rerr == io.ErrUnexpectedEOF {
			for i := read; i < len(buf); i++ {
				buf[i] = 0
			}
			rerr = nil
			pos, berr := b.Backup(buf)
			if berr != nil {
				return positions, n, berr
			}
			return append(positions, pos), n + int64(read), nil
		}
		if rerr != nil {
			return positions, n, fmt.Errorf("cooperative: reading stream: %w", rerr)
		}
		pos, berr := b.Backup(buf)
		if berr != nil {
			return positions, n, berr
		}
		positions = append(positions, pos)
		n += int64(read)
	}
}

// DropLocal simulates the loss of the user's machine: local d-blocks are
// forgotten and must be decoded from remote parities.
func (b *Broker) DropLocal(positions ...int) {
	if len(positions) == 0 {
		b.local = make(map[int]([]byte))
		return
	}
	for _, i := range positions {
		delete(b.local, i)
	}
}

// Read returns block i: from the local store in the failure-free case
// ("users can access their data directly from their local computers,
// decoding is not required"), otherwise decoded from remote parities via
// the first complete pp-tuple, falling back to multi-round repair.
func (b *Broker) Read(i int) ([]byte, error) {
	if i < 1 || i > b.count {
		return nil, fmt.Errorf("cooperative: position %d out of range [1,%d]", i, b.count)
	}
	if d, ok := b.local[i]; ok {
		out := make([]byte, len(d))
		copy(out, d)
		return out, nil
	}
	store := b.netStore()
	if data, err := b.rep.RepairData(store, i); err == nil {
		b.local[i] = data
		out := make([]byte, len(data))
		copy(out, data)
		return out, nil
	}
	// Single XOR failed: run rounds over the whole lattice, then retry.
	if _, err := b.rep.Repair(store, entangle.Options{}); err != nil {
		return nil, err
	}
	if d, ok := b.local[i]; ok {
		out := make([]byte, len(d))
		copy(out, d)
		return out, nil
	}
	return nil, fmt.Errorf("cooperative: block %d is unrecoverable", i)
}

// RepairParity regenerates one parity block following the Table III steps
// and re-uploads it. It returns the node index now holding the block.
func (b *Broker) RepairParity(e lattice.Edge) (int, error) {
	data, err := b.rep.RepairParity(b.netStore(), e)
	if err != nil {
		return 0, err
	}
	key := b.parityKey(e)
	idx := b.placer.PlaceKey(key)
	if err := b.nodes[idx].Put(key, data); err != nil {
		return 0, fmt.Errorf("cooperative: re-uploading %s: %w", key, err)
	}
	return idx, nil
}

// RepairLattice runs round-based repair over the user's whole lattice,
// regenerating every reachable missing data and parity block ("all users
// will be interested in the regeneration of their lattices to maintain the
// same level of redundancy", §IV.A). It returns the engine statistics.
func (b *Broker) RepairLattice() (entangle.Stats, error) {
	return b.rep.Repair(b.netStore(), entangle.Options{})
}

// Recover rebuilds a broker's encoder state after a crash: the strand
// heads are re-fetched from the storage nodes (§IV.A: "it only needs to
// retrieve the p-blocks from the remote nodes"). count tells the recovered
// broker how many blocks had been backed up; local data blocks are those
// still present on the user's machine.
func (b *Broker) Recover(count int, local map[int][]byte) error {
	if count < 0 {
		return fmt.Errorf("cooperative: negative count %d", count)
	}
	b.count = count
	b.local = make(map[int][]byte, len(local))
	for i, d := range local {
		cp := make([]byte, len(d))
		copy(cp, d)
		b.local[i] = cp
	}
	next := count + 1
	lat := b.enc.Lattice()
	heads := make([]entangle.StrandHead, 0, b.params.StrandCount())
	seen := make(map[int]bool, b.params.StrandCount())
	// The head of a strand is the out-edge of the last node ≤ count on it;
	// scan backwards until every strand is covered or positions run out.
	for i := count; i >= 1 && len(seen) < b.params.StrandCount(); i-- {
		for _, class := range lat.Classes() {
			sid, err := lat.StrandID(class, i)
			if err != nil {
				return err
			}
			if seen[sid] {
				continue
			}
			seen[sid] = true
			out, err := lat.OutEdge(class, i)
			if err != nil {
				return err
			}
			key := b.parityKey(out)
			data, err := b.nodeFor(key).Get(key)
			if err != nil {
				return fmt.Errorf("cooperative: recovering head %s: %w", key, err)
			}
			heads = append(heads, entangle.StrandHead{StrandID: sid, Data: data})
		}
	}
	// Strands never touched (count small) keep their zero seed.
	return b.enc.RestoreHeads(next, heads)
}

// netStore adapts the broker's view of the network to entangle.Store so
// the generic repair engine can drive repairs.
//
// It keeps a per-round content cache: MissingParities — which the repair
// engine calls at the start of every round — enumerates the lattice's
// expected parities with one batched GetMany per storage node (for nodes
// implementing BatchNodeStore) and records every fetched block, so the
// round's planning reads are all cache hits. A whole repair round thus
// issues one request frame per node instead of one per block.
type netStore struct {
	b *Broker
	// mu guards the broker's local map and the round cache so the repair
	// engine's concurrent planners (and any pipeline sink use) can read
	// and write through the adapter safely.
	mu sync.RWMutex
	// cache maps parity keys fetched this round to their content; a nil
	// value records a known-missing block. Keys absent from the map fall
	// back to a single-block Get.
	cache map[string][]byte
}

var _ entangle.Store = (*netStore)(nil)

func (b *Broker) netStore() *netStore { return &netStore{b: b} }

// Data implements entangle.Source: the user's local block store.
func (s *netStore) Data(i int) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.b.local[i]
	return d, ok
}

// Parity implements entangle.Source: a round-cache hit, or a remote fetch
// (Table III step 4) for reads outside round-based repair.
func (s *netStore) Parity(e lattice.Edge) ([]byte, bool) {
	if e.IsVirtual() {
		return entangle.ZeroBlock(s.b.blockSize), true
	}
	if e.Left > s.b.count {
		return nil, false // never created
	}
	key := s.b.parityKey(e)
	s.mu.RLock()
	data, ok := s.cache[key]
	s.mu.RUnlock()
	if ok {
		return data, data != nil
	}
	data, err := s.b.nodeFor(key).Get(key)
	if err != nil {
		return nil, false
	}
	return data, true
}

// PutData implements entangle.Store: repaired data returns to the user.
func (s *netStore) PutData(i int, b []byte) error {
	cp := make([]byte, len(b))
	copy(cp, b)
	s.mu.Lock()
	s.b.local[i] = cp
	s.mu.Unlock()
	return nil
}

// PutParity implements entangle.Store: repaired parities are re-uploaded
// (Table III step 5) and written through to the round cache. The input is
// copied; callers may recycle it after return.
func (s *netStore) PutParity(e lattice.Edge, data []byte) error {
	key := s.b.parityKey(e)
	if err := s.b.nodeFor(key).Put(key, data); err != nil {
		return err
	}
	s.mu.Lock()
	if s.cache != nil {
		cp := make([]byte, len(data))
		copy(cp, data)
		s.cache[key] = cp
	}
	s.mu.Unlock()
	return nil
}

// MissingData implements entangle.Store.
func (s *netStore) MissingData() []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []int
	for i := 1; i <= s.b.count; i++ {
		if _, ok := s.b.local[i]; !ok {
			out = append(out, i)
		}
	}
	return out
}

// MissingParities implements entangle.Store: every parity the lattice says
// should exist but no node serves. Enumeration doubles as the round's bulk
// fetch — batch-capable nodes answer with one GetMany frame per node (in
// MaxBatchEntries-sized chunks) and the returned contents seed the round
// cache.
func (s *netStore) MissingParities() []lattice.Edge {
	type expected struct {
		edge lattice.Edge
		key  string
	}
	lat := s.b.rep.Lattice()
	byNode := make([][]expected, len(s.b.nodes))
	for i := 1; i <= s.b.count; i++ {
		for _, class := range lat.Classes() {
			e, err := lat.OutEdge(class, i)
			if err != nil {
				continue
			}
			key := s.b.parityKey(e)
			idx := s.b.placer.PlaceKey(key)
			byNode[idx] = append(byNode[idx], expected{edge: e, key: key})
		}
	}
	cache := make(map[string][]byte, s.b.count*len(lat.Classes()))
	var out []lattice.Edge
	for idx, wanted := range byNode {
		node := s.b.nodes[idx]
		bn, batched := node.(BatchNodeStore)
		if !batched {
			for _, w := range wanted {
				data, err := node.Get(w.key)
				if err != nil {
					cache[w.key] = nil
					out = append(out, w.edge)
					continue
				}
				cache[w.key] = data
			}
			continue
		}
		step := chunkEntries(s.b.blockSize)
		for start := 0; start < len(wanted); start += step {
			chunk := wanted[start:min(start+step, len(wanted))]
			keys := make([]string, len(chunk))
			for j, w := range chunk {
				keys[j] = w.key
			}
			blocks, err := bn.GetMany(keys)
			if err != nil || len(blocks) != len(chunk) {
				// Node unreachable (or confused): everything it holds is
				// missing this round.
				for _, w := range chunk {
					cache[w.key] = nil
					out = append(out, w.edge)
				}
				continue
			}
			for j, w := range chunk {
				cache[w.key] = blocks[j]
				if blocks[j] == nil {
					out = append(out, w.edge)
				}
			}
		}
	}
	s.mu.Lock()
	s.cache = cache
	s.mu.Unlock()
	sort.Slice(out, func(a, b int) bool {
		if out[a].Class != out[b].Class {
			return out[a].Class < out[b].Class
		}
		return out[a].Left < out[b].Left
	})
	return out
}
