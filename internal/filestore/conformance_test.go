package filestore_test

import (
	"testing"

	"aecodes/internal/filestore"
	"aecodes/internal/lattice"
	"aecodes/internal/store"
	"aecodes/internal/store/storetest"
)

// TestConformance runs the directory store (promoted with store.Batch)
// through the repository-wide BlockStore conformance suite, including
// the reopen leg: a directory archive must read back identically through
// a fresh Open.
func TestConformance(t *testing.T) {
	params := lattice.Params{Alpha: 3, S: 2, P: 5}
	const (
		blocks    = 12
		blockSize = 64
	)
	dirs := make(map[store.BlockStore]string)
	storetest.Run(t, storetest.Harness{
		Params:    params,
		Blocks:    blocks,
		BlockSize: blockSize,
		New: func(t *testing.T) store.BlockStore {
			dir := t.TempDir()
			fs, err := filestore.Create(dir, filestore.Manifest{
				Format:    filestore.FormatFramed,
				Alpha:     params.Alpha,
				S:         params.S,
				P:         params.P,
				BlockSize: blockSize,
				Blocks:    blocks,
			})
			if err != nil {
				t.Fatal(err)
			}
			bs := store.Batch(fs)
			dirs[bs] = dir
			return bs
		},
		Reopen: func(t *testing.T, old store.BlockStore) store.BlockStore {
			fs, err := filestore.Open(dirs[old])
			if err != nil {
				t.Fatal(err)
			}
			return store.Batch(fs)
		},
	})
}
