package sim

import "fmt"

// ReplicationScheme simulates n-way replication under disaster. Each data
// block has n copies at independently drawn locations; the block is lost
// only when every copy's location failed.
type ReplicationScheme struct {
	n int
}

var _ Scheme = (*ReplicationScheme)(nil)

// NewReplication returns the simulation scheme for n-way replication.
func NewReplication(n int) (*ReplicationScheme, error) {
	if n < 2 {
		return nil, fmt.Errorf("sim: replication needs at least 2 copies, got %d", n)
	}
	return &ReplicationScheme{n: n}, nil
}

// Name implements Scheme.
func (s *ReplicationScheme) Name() string { return fmt.Sprintf("%d-way", s.n) }

// AdditionalStorage implements Scheme (Table IV: (n−1)·100%).
func (s *ReplicationScheme) AdditionalStorage() float64 { return float64(s.n - 1) }

// SingleFailureCost implements Scheme: one read of any surviving copy.
func (s *ReplicationScheme) SingleFailureCost() int { return 1 }

// Simulate implements Scheme.
//
// The full-maintenance metrics treat copy 0 as the block's primary
// location ("its location is unavailable"): a repair is the re-creation of
// a failed primary from any surviving copy, always a single-failure, one-
// round operation. The minimal-maintenance vulnerability metric counts
// blocks left with exactly one surviving copy — no re-replication happens,
// matching the no-parity-repair policy of §V.C.2 applied to copies.
func (s *ReplicationScheme) Simulate(cfg Config, frac float64) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	failed, err := disasterSet(cfg, frac)
	if err != nil {
		return Result{}, err
	}
	place, err := newPlacement(cfg)
	if err != nil {
		return Result{}, err
	}

	res := Result{
		Scheme:       s.Name(),
		DisasterFrac: frac,
		DataBlocks:   cfg.DataBlocks,
	}
	for i := 0; i < cfg.DataBlocks; i++ {
		base := uint64(i) * uint64(s.n)
		survivors := 0
		primaryUp := false
		for c := 0; c < s.n; c++ {
			if !failed[place.Place(base+uint64(c))] {
				survivors++
				if c == 0 {
					primaryUp = true
				}
			}
		}
		switch {
		case survivors == 0:
			res.DataLoss++
		case !primaryUp:
			res.RepairedData++
			res.FirstRoundData++ // every replication repair is single-failure
			res.RepairReads++    // one read of any surviving copy
		}
		if survivors == 1 {
			res.VulnerableData++
		}
	}
	if res.RepairedData > 0 {
		res.Rounds = 1
	}
	return res, nil
}
