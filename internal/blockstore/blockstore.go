// Package blockstore provides a location-aware block store: a cluster of
// storage nodes, each holding named blocks, where whole locations can fail
// and recover. It is the storage substrate beneath the cooperative backup
// use case (§IV.A) and the disaster examples; the entangled view in this
// package lets the entanglement repair engine run unchanged on top of it.
package blockstore

import (
	"fmt"
	"sort"
	"sync"

	"aecodes/internal/lattice"
)

// DataKey names the data block at lattice position i ("d26" in the paper's
// notation).
func DataKey(i int) string { return fmt.Sprintf("d:%d", i) }

// ParityKey names the parity block on edge e ("p21,26" tagged with its
// strand class, as in Table V).
func ParityKey(e lattice.Edge) string {
	return fmt.Sprintf("p:%s:%d:%d", e.Class, e.Left, e.Right)
}

// Node is one storage location. Nodes are managed by a Cluster; use the
// cluster methods to mutate them.
type Node struct {
	id        int
	available bool
	blocks    map[string][]byte
}

// ID returns the node id.
func (n *Node) ID() int { return n.id }

// Available reports whether the node currently serves requests.
func (n *Node) Available() bool { return n.available }

// Len returns the number of blocks stored on the node.
func (n *Node) Len() int { return len(n.blocks) }

// Cluster is a set of storage nodes addressed 0..n−1. All methods are safe
// for concurrent use.
type Cluster struct {
	mu    sync.RWMutex
	nodes []*Node
	// index maps a block key to the node that stores it, so reads do not
	// depend on the placement policy once a block is written.
	index map[string]int
}

// NewCluster returns a cluster of n available, empty nodes.
// It returns an error when n is not positive.
func NewCluster(n int) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("blockstore: need at least one node, got %d", n)
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = &Node{id: i, available: true, blocks: make(map[string][]byte)}
	}
	return &Cluster{nodes: nodes, index: make(map[string]int)}, nil
}

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.nodes) }

// Put stores a block on the given node, overwriting any previous content
// under the same key anywhere in the cluster.
func (c *Cluster) Put(node int, key string, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.putLocked(node, key, cp)
}

// putLocked stores an already-copied block under c.mu; batch writers use
// it to apply many entries per lock acquisition.
func (c *Cluster) putLocked(node int, key string, cp []byte) error {
	if node < 0 || node >= len(c.nodes) {
		return fmt.Errorf("blockstore: node %d out of range [0,%d)", node, len(c.nodes))
	}
	if prev, ok := c.index[key]; ok && prev != node {
		delete(c.nodes[prev].blocks, key)
	}
	c.nodes[node].blocks[key] = cp
	c.index[key] = node
	return nil
}

// Get returns the block content and true when the block exists and its node
// is available.
func (c *Cluster) Get(key string) ([]byte, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	b := c.getLocked(key)
	return b, b != nil
}

// getLocked returns a copy of the block, or nil when it is missing or its
// node is down. Callers hold c.mu.
func (c *Cluster) getLocked(key string) []byte {
	node, ok := c.index[key]
	if !ok || !c.nodes[node].available {
		return nil
	}
	b, ok := c.nodes[node].blocks[key]
	if !ok {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// Locate returns the node storing key and whether the key is known.
func (c *Cluster) Locate(key string) (int, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	node, ok := c.index[key]
	return node, ok
}

// SetAvailable toggles a node's availability — the disaster lever: "The
// framework simulates disasters by changing the availability of a certain
// number of locations" (§V.C).
func (c *Cluster) SetAvailable(node int, up bool) error {
	if node < 0 || node >= len(c.nodes) {
		return fmt.Errorf("blockstore: node %d out of range [0,%d)", node, len(c.nodes))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nodes[node].available = up
	return nil
}

// Available reports whether the node is up.
func (c *Cluster) Available(node int) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if node < 0 || node >= len(c.nodes) {
		return false
	}
	return c.nodes[node].available
}

// NodeLen returns the number of blocks on one node (available or not).
func (c *Cluster) NodeLen(node int) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if node < 0 || node >= len(c.nodes) {
		return 0
	}
	return c.nodes[node].Len()
}

// UnavailableKeys lists, in sorted order, every key whose node is down.
func (c *Cluster) UnavailableKeys() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []string
	for key, node := range c.index {
		if !c.nodes[node].available {
			out = append(out, key)
		}
	}
	sort.Strings(out)
	return out
}

// Evict removes a block from the cluster entirely (storage reclaimed), as
// opposed to a node failure where content survives recovery.
func (c *Cluster) Evict(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if node, ok := c.index[key]; ok {
		delete(c.nodes[node].blocks, key)
		delete(c.index, key)
	}
}
