package xorblock

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// TestKernelMatchesGeneric differentially tests the active kernel against
// the always-compiled generic reference over awkward sizes and unaligned
// slice offsets (sub-slicing shifts the base pointer, so the unsafe
// kernel's unaligned loads get exercised for real).
func TestKernelMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sizes := []int{0, 1, 7, 8, 9, 63, 64, 65, 127, 128, 1000, 4096}
	for _, size := range sizes {
		for _, offset := range []int{0, 1, 3, 5} {
			a := make([]byte, size+offset)
			b := make([]byte, size+offset)
			rng.Read(a)
			rng.Read(b)
			av, bv := a[offset:], b[offset:]

			want := make([]byte, size)
			xorWordsGeneric(want, av, bv)
			got := make([]byte, size)
			xorWords(got, av, bv)
			if !bytes.Equal(got, want) {
				t.Fatalf("xorWords(%s) size %d offset %d diverges from generic", kernelName, size, offset)
			}

			// Aliased: dst == a, the XorAccumulate shape.
			aliasWant := make([]byte, size)
			copy(aliasWant, av)
			xorWordsGeneric(aliasWant, aliasWant, bv)
			aliasGot := make([]byte, size+offset)
			copy(aliasGot, a)
			xorWords(aliasGot[offset:], aliasGot[offset:], bv)
			if !bytes.Equal(aliasGot[offset:], aliasWant) {
				t.Fatalf("aliased xorWords(%s) size %d offset %d diverges", kernelName, size, offset)
			}

			if size == 0 {
				continue
			}
			for _, nsrc := range []int{2, 3, 5} {
				srcs := make([][]byte, nsrc)
				for i := range srcs {
					s := make([]byte, size+offset)
					rng.Read(s)
					srcs[i] = s[offset:]
				}
				wantM := make([]byte, size)
				xorManyGeneric(wantM, srcs)
				gotM := make([]byte, size)
				xorMany(gotM, srcs)
				if !bytes.Equal(gotM, wantM) {
					t.Fatalf("xorMany(%s) size %d offset %d nsrc %d diverges", kernelName, size, offset, nsrc)
				}
			}
		}
	}
}

// benchSizes covers a cache-resident block and a realistic archive block.
var benchSizes = []int{4 << 10, 64 << 10, 1 << 20}

// BenchmarkXorWordsKernel measures the active kernel (see kernelName) and
// the generic reference in one run, so every environment reports the
// speedup of its selected kernel.
func BenchmarkXorWordsKernel(b *testing.B) {
	for _, size := range benchSizes {
		a := make([]byte, size)
		c := make([]byte, size)
		dst := make([]byte, size)
		rand.New(rand.NewSource(2)).Read(a)
		rand.New(rand.NewSource(3)).Read(c)
		b.Run(fmt.Sprintf("%s/%dKiB", kernelName, size>>10), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				xorWords(dst, a, c)
			}
		})
		b.Run(fmt.Sprintf("generic/%dKiB", size>>10), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				xorWordsGeneric(dst, a, c)
			}
		})
	}
}

// BenchmarkXorManyKernel is the same comparison for the one-pass
// many-operand kernel at the α=3 fan-in the encoder uses.
func BenchmarkXorManyKernel(b *testing.B) {
	for _, size := range benchSizes {
		srcs := make([][]byte, 3)
		for i := range srcs {
			srcs[i] = make([]byte, size)
			rand.New(rand.NewSource(int64(i))).Read(srcs[i])
		}
		dst := make([]byte, size)
		b.Run(fmt.Sprintf("%s/%dKiB", kernelName, size>>10), func(b *testing.B) {
			b.SetBytes(int64(size) * 3)
			for i := 0; i < b.N; i++ {
				xorMany(dst, srcs)
			}
		})
		b.Run(fmt.Sprintf("generic/%dKiB", size>>10), func(b *testing.B) {
			b.SetBytes(int64(size) * 3)
			for i := 0; i < b.N; i++ {
				xorManyGeneric(dst, srcs)
			}
		})
	}
}
