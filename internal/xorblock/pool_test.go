package xorblock

import (
	"bytes"
	"math/rand"
	"testing"
)

func randBlock(t *testing.T, n int, seed int64) []byte {
	t.Helper()
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func TestXorManyIntoMatchesXorMany(t *testing.T) {
	for _, srcCount := range []int{1, 2, 3, 5, 8} {
		for _, size := range []int{0, 1, 7, 8, 9, 64, 1000} {
			srcs := make([][]byte, srcCount)
			for i := range srcs {
				srcs[i] = randBlock(t, size, int64(srcCount*100+i))
			}
			want, err := XorMany(srcs...)
			if err != nil {
				t.Fatal(err)
			}
			dst := make([]byte, size)
			if err := XorManyInto(dst, srcs...); err != nil {
				t.Fatalf("srcs=%d size=%d: %v", srcCount, size, err)
			}
			if !bytes.Equal(dst, want) {
				t.Errorf("srcs=%d size=%d: XorManyInto disagrees with XorMany", srcCount, size)
			}
		}
	}
}

func TestXorManyIntoAliasing(t *testing.T) {
	a := randBlock(t, 100, 1)
	b := randBlock(t, 100, 2)
	c := randBlock(t, 100, 3)
	want, err := XorMany(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	// dst aliases the first source.
	dst := append([]byte(nil), a...)
	if err := XorManyInto(dst, dst, b, c); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, want) {
		t.Error("aliasing the first source corrupted the result")
	}
	// dst aliases a later source.
	dst = append([]byte(nil), c...)
	if err := XorManyInto(dst, a, b, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, want) {
		t.Error("aliasing a later source corrupted the result")
	}
}

func TestXorManyIntoErrors(t *testing.T) {
	if err := XorManyInto(make([]byte, 4)); err == nil {
		t.Error("no sources: want error")
	}
	if err := XorManyInto(make([]byte, 4), make([]byte, 5)); err == nil {
		t.Error("length mismatch: want error")
	}
	if err := XorManyInto(make([]byte, 4), make([]byte, 4), make([]byte, 3)); err == nil {
		t.Error("second source mismatch: want error")
	}
}

func TestXorManyIntoSingleSourceCopies(t *testing.T) {
	src := randBlock(t, 33, 9)
	dst := make([]byte, 33)
	if err := XorManyInto(dst, src); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, src) {
		t.Error("single-source XorManyInto should copy the source")
	}
}

func TestPoolRecycles(t *testing.T) {
	p := NewPool(64)
	if p.BlockSize() != 64 {
		t.Fatalf("BlockSize() = %d, want 64", p.BlockSize())
	}
	b := p.Get()
	if len(b) != 64 {
		t.Fatalf("Get returned %d bytes, want 64", len(b))
	}
	p.Put(b)
	// Wrong sizes and nil must be rejected without panicking.
	p.Put(make([]byte, 63))
	p.Put(nil)
	if got := p.Get(); len(got) != 64 {
		t.Fatalf("Get after bad Puts returned %d bytes, want 64", len(got))
	}
}

func TestPoolForSharedBySize(t *testing.T) {
	if PoolFor(128) != PoolFor(128) {
		t.Error("PoolFor(128) should return one shared pool")
	}
	if PoolFor(128) == PoolFor(256) {
		t.Error("different sizes must get different pools")
	}
	if got := PoolFor(256).Get(); len(got) != 256 {
		t.Errorf("PoolFor(256).Get() returned %d bytes", len(got))
	}
}

func TestNewPoolRejectsBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPool(0) should panic")
		}
	}()
	NewPool(0)
}
