//go:build !purego

#include "textflag.h"

// NEON XOR kernels for arm64, dispatched by dispatch_arm64.go. As on
// amd64, n is pre-rounded by the Go wrappers to a whole positive number
// of 64-byte chunks and the ragged tail never reaches assembly; NEON
// VLD1/VST1 tolerate unaligned addresses. The many-kernel folds every
// source into registers before the single store of each dst chunk,
// preserving XorManyInto's one-pass-over-dst shape.

// func xorWordsNEON(dst, a, b *byte, n int)
TEXT ·xorWordsNEON(SB), NOSPLIT, $0-32
	MOVD dst+0(FP), R0
	MOVD a+8(FP), R1
	MOVD b+16(FP), R2
	MOVD n+24(FP), R3

neonwords:
	VLD1.P 64(R1), [V0.B16, V1.B16, V2.B16, V3.B16]
	VLD1.P 64(R2), [V4.B16, V5.B16, V6.B16, V7.B16]
	VEOR   V4.B16, V0.B16, V0.B16
	VEOR   V5.B16, V1.B16, V1.B16
	VEOR   V6.B16, V2.B16, V2.B16
	VEOR   V7.B16, V3.B16, V3.B16
	VST1.P [V0.B16, V1.B16, V2.B16, V3.B16], 64(R0)
	SUBS   $64, R3, R3
	BNE    neonwords
	RET

// func xorManyNEON(dst *byte, srcs **byte, nsrc, n int)
TEXT ·xorManyNEON(SB), NOSPLIT, $0-32
	MOVD dst+0(FP), R0
	MOVD srcs+8(FP), R1
	MOVD nsrc+16(FP), R2
	MOVD n+24(FP), R3
	MOVD $0, R4                               // byte offset into every buffer

neonchunk:
	MOVD (R1), R5                             // srcs[0]
	ADD  R4, R5, R5
	VLD1 (R5), [V0.B16, V1.B16, V2.B16, V3.B16]
	MOVD $1, R6                               // source index

neonsrc:
	CMP  R2, R6
	BGE  neonstore
	MOVD (R1)(R6<<3), R5                      // srcs[i]
	ADD  R4, R5, R5
	VLD1 (R5), [V4.B16, V5.B16, V6.B16, V7.B16]
	VEOR V4.B16, V0.B16, V0.B16
	VEOR V5.B16, V1.B16, V1.B16
	VEOR V6.B16, V2.B16, V2.B16
	VEOR V7.B16, V3.B16, V3.B16
	ADD  $1, R6, R6
	B    neonsrc

neonstore:
	ADD  R4, R0, R5
	VST1 [V0.B16, V1.B16, V2.B16, V3.B16], (R5)
	ADD  $64, R4, R4
	CMP  R3, R4
	BLT  neonchunk
	RET
