package entangle

import (
	"bytes"
	"testing"

	"aecodes/internal/lattice"
)

// TestHeadsCrashResume exercises the §IV.A broker-crash story end to end:
// encode half a stream, snapshot the encoder with Heads, "crash", build a
// fresh encoder, RestoreHeads the snapshot, and verify that the resumed
// encoder emits byte-identical parities for the rest of the stream.
func TestHeadsCrashResume(t *testing.T) {
	for _, params := range []lattice.Params{
		{Alpha: 1, S: 1, P: 0},
		{Alpha: 2, S: 2, P: 5},
		{Alpha: 3, S: 2, P: 5},
		{Alpha: 3, S: 5, P: 5},
	} {
		t.Run(params.String(), func(t *testing.T) {
			const n, crashAt, blockSize = 80, 37, 24
			blocks := randBlocks(n, blockSize, 13)

			// Reference: one encoder sees the whole stream.
			want, _ := entangleAll(t, params, blocks, blockSize)

			// Encode up to the crash point, snapshot, crash.
			first, err := NewEncoder(params, blockSize)
			if err != nil {
				t.Fatal(err)
			}
			for _, data := range blocks[:crashAt] {
				if _, err := first.Entangle(data); err != nil {
					t.Fatal(err)
				}
			}
			next, heads := first.Heads()
			if next != crashAt+1 {
				t.Fatalf("snapshot next = %d, want %d", next, crashAt+1)
			}
			// The snapshot must be a deep copy: mutating the source encoder
			// afterwards must not corrupt it.
			if _, err := first.Entangle(blocks[crashAt]); err != nil {
				t.Fatal(err)
			}

			// Resume on a fresh encoder.
			second, err := NewEncoder(params, blockSize)
			if err != nil {
				t.Fatal(err)
			}
			if err := second.RestoreHeads(next, heads); err != nil {
				t.Fatal(err)
			}
			if second.Next() != crashAt+1 {
				t.Fatalf("restored next = %d, want %d", second.Next(), crashAt+1)
			}
			for bi := crashAt; bi < n; bi++ {
				ent, err := second.Entangle(blocks[bi])
				if err != nil {
					t.Fatal(err)
				}
				if ent.Index != bi+1 {
					t.Fatalf("resumed encoder assigned %d, want %d", ent.Index, bi+1)
				}
				for _, p := range ent.Parities {
					if !bytes.Equal(p.Data, want[p.Edge]) {
						t.Fatalf("resumed parity %v differs from uninterrupted encode", p.Edge)
					}
				}
			}
		})
	}
}
