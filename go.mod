module aecodes

go 1.24

// aelint is this module's own static-analysis suite (built on the
// standard library's go/ast + go/types, no third-party analysis
// framework), registered as a module tool so `go tool aelint ./...`
// runs the exact analyzer code of the checkout — CI and local runs
// cannot drift. The other CI analyzer, staticcheck, is version-pinned
// in .github/workflows/ci.yml (STATICCHECK_VERSION); it cannot be a
// tool dependency here without giving the module a third-party
// requirement.
tool aecodes/cmd/aelint
