package entangle

import (
	"bytes"
	"context"
	"math/rand"
	"sync"
	"testing"

	"aecodes/internal/lattice"
	"aecodes/internal/store"
)

// countingStore wraps a BlockStore and counts every call per method, so
// tests can pin the engine's traffic shape exactly.
type countingStore struct {
	inner store.BlockStore

	mu        sync.Mutex
	getData   int
	getParity int
	getMany   int
	putMany   int
	missing   int
}

var _ store.BlockStore = (*countingStore)(nil)

func (c *countingStore) bump(n *int) {
	c.mu.Lock()
	*n++
	c.mu.Unlock()
}

func (c *countingStore) GetData(ctx context.Context, i int) ([]byte, error) {
	c.bump(&c.getData)
	return c.inner.GetData(ctx, i)
}

func (c *countingStore) GetParity(ctx context.Context, e lattice.Edge) ([]byte, error) {
	c.bump(&c.getParity)
	return c.inner.GetParity(ctx, e)
}

func (c *countingStore) PutData(ctx context.Context, i int, b []byte) error {
	return c.inner.PutData(ctx, i, b)
}

func (c *countingStore) PutParity(ctx context.Context, e lattice.Edge, b []byte) error {
	return c.inner.PutParity(ctx, e, b)
}

func (c *countingStore) GetMany(ctx context.Context, refs []store.Ref) ([][]byte, error) {
	c.bump(&c.getMany)
	return c.inner.GetMany(ctx, refs)
}

func (c *countingStore) PutMany(ctx context.Context, blocks []store.Block) error {
	c.bump(&c.putMany)
	return c.inner.PutMany(ctx, blocks)
}

func (c *countingStore) Missing(ctx context.Context) (store.Missing, error) {
	c.bump(&c.missing)
	return c.inner.Missing(ctx)
}

func (c *countingStore) counts() (getData, getParity, getMany, putMany, missing int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.getData, c.getParity, c.getMany, c.putMany, c.missing
}

// buildDamagedStore entangles n random blocks into a MemoryStore and marks
// a fraction of data and parity blocks lost. It returns the store and the
// originals (1-based).
func buildDamagedStore(t *testing.T, params lattice.Params, n, blockSize int, lossFrac float64, seed int64) (*MemoryStore, [][]byte) {
	t.Helper()
	enc, err := NewEncoder(params, blockSize)
	if err != nil {
		t.Fatal(err)
	}
	st := NewMemoryStore(blockSize)
	rng := rand.New(rand.NewSource(seed))
	originals := make([][]byte, n+1)
	for i := 1; i <= n; i++ {
		data := make([]byte, blockSize)
		rng.Read(data)
		originals[i] = data
		ent, err := enc.Entangle(data)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.PutData(context.Background(), ent.Index, data); err != nil {
			t.Fatal(err)
		}
		for _, p := range ent.Parities {
			if err := st.PutParity(context.Background(), p.Edge, p.Data); err != nil {
				t.Fatal(err)
			}
		}
	}
	lat := enc.Lattice()
	for i := 1; i <= n; i++ {
		if rng.Float64() < lossFrac {
			st.LoseData(i)
		}
		for _, class := range lat.Classes() {
			if rng.Float64() < lossFrac {
				if e, err := lat.OutEdge(class, i); err == nil {
					st.LoseParity(e)
				}
			}
		}
	}
	return st, originals
}

// TestRepairRoundPrefetchShape pins the engine-level traffic shape on any
// backend: each productive round issues exactly one Missing enumeration
// and exactly one GetMany prefetch, planning never reads single blocks
// from the store, and each productive round commits exactly one PutMany.
func TestRepairRoundPrefetchShape(t *testing.T) {
	for _, workers := range []int{1, 4} {
		st, originals := buildDamagedStore(t, lattice.Params{Alpha: 3, S: 2, P: 5}, 150, 64, 0.3, int64(41+workers))
		cs := &countingStore{inner: st}
		rep, err := NewRepairer(lattice.Params{Alpha: 3, S: 2, P: 5})
		if err != nil {
			t.Fatal(err)
		}
		stats, err := rep.Repair(context.Background(), cs, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(stats.UnrepairedData) != 0 {
			t.Fatalf("workers=%d: %d data blocks unrepaired", workers, len(stats.UnrepairedData))
		}
		getData, getParity, getMany, putMany, missing := cs.counts()
		// Productive rounds plus the closing enumeration each call Missing;
		// only productive rounds (and a possible final unproductive one that
		// still had missing blocks) prefetch and commit.
		if missing < stats.Rounds || missing > stats.Rounds+1 {
			t.Errorf("workers=%d: %d Missing calls over %d rounds, want %d or %d",
				workers, missing, stats.Rounds, stats.Rounds, stats.Rounds+1)
		}
		if getMany != stats.Rounds {
			t.Errorf("workers=%d: %d GetMany prefetches over %d productive rounds, want exactly one per round",
				workers, getMany, stats.Rounds)
		}
		if putMany != stats.Rounds {
			t.Errorf("workers=%d: %d PutMany commits over %d rounds, want exactly one per round",
				workers, putMany, stats.Rounds)
		}
		if getData != 0 || getParity != 0 {
			t.Errorf("workers=%d: planning read %d data + %d parity single blocks from the store, want 0 (round cache bypassed)",
				workers, getData, getParity)
		}
		for i := 1; i <= 150; i++ {
			got, err := st.GetData(context.Background(), i)
			if err != nil {
				t.Fatalf("workers=%d: d%d unavailable after repair: %v", workers, i, err)
			}
			if !bytes.Equal(got, originals[i]) {
				t.Fatalf("workers=%d: d%d corrupted by repair", workers, i)
			}
		}
	}
}

// TestRepairPrefetchSnapshotIsolation pins that planning reads only the
// prefetched snapshot: blocks lost after the prefetch (mid-round faults)
// do not change what the round's planners see, so the round still commits
// what the frozen pre-round state allowed.
func TestRepairPrefetchSnapshotIsolation(t *testing.T) {
	params := lattice.Params{Alpha: 3, S: 2, P: 5}
	st, _ := buildDamagedStore(t, params, 60, 32, 0, 9)
	st.LoseData(10)

	// losingStore drops a parity from the backend the moment the round's
	// prefetch completes; a snapshot-reading planner must not notice.
	ls := &losingStore{MemoryStore: st, lose: func() {
		lat, _ := lattice.New(params)
		for _, class := range lat.Classes() {
			if e, err := lat.OutEdge(class, 10); err == nil {
				st.LoseParity(e)
			}
		}
	}}
	rep, err := NewRepairer(params)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := rep.Repair(context.Background(), ls, Options{MaxRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.DataRepaired != 1 {
		t.Fatalf("repaired %d data blocks, want 1 (snapshot should shield planning from the mid-round loss)", stats.DataRepaired)
	}
}

// losingStore triggers lose once, after the first GetMany returns.
type losingStore struct {
	*MemoryStore
	once sync.Once
	lose func()
}

func (l *losingStore) GetMany(ctx context.Context, refs []store.Ref) ([][]byte, error) {
	blocks, err := l.MemoryStore.GetMany(ctx, refs)
	l.once.Do(l.lose)
	return blocks, err
}
