// Package raidae models the disk-array organisation of §IV.B.2: RAID-AE,
// a redundant array of *interdependent* disks built on alpha entanglement
// codes, compared against classic fixed-stripe RAID5.
//
// The §IV.B.2 arguments quantified here:
//
//   - Never-ending stripe: RAID5 computes each parity over a fixed-width
//     stripe, so growing a 6+1 array to 7+1 re-encodes every parity.
//     RAID-AE writes into a boundless lattice; adding disks changes only
//     the placement of future blocks — zero re-encoding.
//   - Write penalty: a RAID5 small write costs 4 I/Os (read old data, read
//     old parity, write both); RAID-AE costs α+1 block writes and no
//     reads, because parities extend strands instead of being updated in
//     place (log-structured, append-only).
//   - Degraded reads: a RAID5 read of a block on a failed disk touches the
//     whole remaining stripe (k I/Os). RAID-AE offers α two-block paths at
//     distance one, and exponentially many longer paths (Fig 2).
//   - Dynamic fault tolerance: α can grow later without re-encoding the
//     existing lattice; RAID5's tolerance is fixed at one disk.
package raidae

import (
	"fmt"

	"aecodes/internal/lattice"
)

// RAID5 models a k+1 fixed-stripe parity array.
type RAID5 struct {
	k int // data units per stripe
}

// NewRAID5 returns a RAID5 model with k data disks per stripe.
func NewRAID5(k int) (*RAID5, error) {
	if k < 2 {
		return nil, fmt.Errorf("raidae: RAID5 needs at least 2 data disks, got %d", k)
	}
	return &RAID5{k: k}, nil
}

// String names the geometry, e.g. "RAID5(6+1)".
func (r *RAID5) String() string { return fmt.Sprintf("RAID5(%d+1)", r.k) }

// SmallWriteIOs returns the I/O count of an in-place small write:
// read-modify-write of data and parity — the classic 4.
func (r *RAID5) SmallWriteIOs() int { return 4 }

// DegradedReadIOs returns the I/O count to read one block from a failed
// disk: the k surviving stripe units.
func (r *RAID5) DegradedReadIOs() int { return r.k }

// FaultTolerance returns the number of simultaneous disk failures
// tolerated: 1.
func (r *RAID5) FaultTolerance() int { return 1 }

// ReencodeOnGrow returns how many parity units must be recomputed when
// the array grows from k to k+1 data disks with nStripes stripes of
// content: every stripe's parity changes width, so all of them.
func (r *RAID5) ReencodeOnGrow(nStripes int) int { return nStripes }

// ArrayAE models a RAID-AE array: a lattice of entangled blocks laid out
// over a set of disks.
type ArrayAE struct {
	params lattice.Params
	lat    *lattice.Lattice
	disks  int
}

// NewArrayAE returns a RAID-AE model with the given code parameters and
// initial disk count.
func NewArrayAE(params lattice.Params, disks int) (*ArrayAE, error) {
	lat, err := lattice.New(params)
	if err != nil {
		return nil, err
	}
	if disks < params.Alpha+1 {
		return nil, fmt.Errorf("raidae: need at least α+1=%d disks, got %d", params.Alpha+1, disks)
	}
	return &ArrayAE{params: params, lat: lat, disks: disks}, nil
}

// String names the array, e.g. "RAID-AE(3,2,5)x8".
func (a *ArrayAE) String() string {
	return fmt.Sprintf("RAID-AE(%d,%d,%d)x%d", a.params.Alpha, a.params.S, a.params.P, a.disks)
}

// Disks returns the current disk count.
func (a *ArrayAE) Disks() int { return a.disks }

// SmallWriteIOs returns the write cost of one logical block: the block
// plus its α parities, all appended — α+1 writes, zero reads (§IV.B.2
// "the write penalty is α+1").
func (a *ArrayAE) SmallWriteIOs() int { return a.params.Alpha + 1 }

// DegradedReadIOs returns the I/O count of the shortest degraded read:
// one pp-tuple, always two blocks.
func (a *ArrayAE) DegradedReadIOs() int { return 2 }

// DegradedReadPaths returns the number of distance-one repair paths for a
// data block: α (one pp-tuple per strand). Longer concentric paths grow
// exponentially with distance (Fig 2); this reports only the direct ones.
func (a *ArrayAE) DegradedReadPaths() int { return a.params.Alpha }

// ReencodeOnGrow returns how many existing parities must be recomputed
// when disks are added: none — the lattice is a never-ending stripe and
// new capacity only affects placement of future blocks.
func (a *ArrayAE) ReencodeOnGrow(nBlocks int) int { return 0 }

// Grow adds disks to the array without interrupting service or
// re-encoding ("both actions may be done dynamically", §IV.B.2).
func (a *ArrayAE) Grow(extra int) error {
	if extra < 0 {
		return fmt.Errorf("raidae: cannot grow by %d", extra)
	}
	a.disks += extra
	return nil
}

// RaiseAlpha returns a new array description with a higher α. Existing
// blocks keep their current parities; only newly written blocks gain the
// extra strand, so the operation is O(1) — "because the parameter α can
// change in future, the system can scale in fault tolerance".
func (a *ArrayAE) RaiseAlpha(newAlpha int) (*ArrayAE, error) {
	if newAlpha < a.params.Alpha {
		return nil, fmt.Errorf("raidae: cannot lower α from %d to %d without dropping parities",
			a.params.Alpha, newAlpha)
	}
	params := a.params
	params.Alpha = newAlpha
	if params.Alpha > 1 && params.P == 0 {
		// Moving off single entanglement requires choosing helical strands.
		params.S = 1
		params.P = 1
	}
	return NewArrayAE(params, a.disks)
}

// Comparison is one row of the §IV.B.2 cost comparison.
type Comparison struct {
	System          string
	SmallWriteIOs   int
	DegradedReadIOs int
	ReencodeOnGrow  int // for a workload of GrowWorkload units
	FaultTolerance  string
}

// GrowWorkload is the stripe/block count used for the re-encode column of
// Compare.
const GrowWorkload = 1_000_000

// Compare builds the RAID5 vs RAID-AE cost table for the given AE
// parameters.
func Compare(k int, params lattice.Params, disks int) ([]Comparison, error) {
	r5, err := NewRAID5(k)
	if err != nil {
		return nil, err
	}
	ae, err := NewArrayAE(params, disks)
	if err != nil {
		return nil, err
	}
	return []Comparison{
		{
			System:          r5.String(),
			SmallWriteIOs:   r5.SmallWriteIOs(),
			DegradedReadIOs: r5.DegradedReadIOs(),
			ReencodeOnGrow:  r5.ReencodeOnGrow(GrowWorkload / k),
			FaultTolerance:  "1 disk (fixed)",
		},
		{
			System:          ae.String(),
			SmallWriteIOs:   ae.SmallWriteIOs(),
			DegradedReadIOs: ae.DegradedReadIOs(),
			ReencodeOnGrow:  ae.ReencodeOnGrow(GrowWorkload),
			FaultTolerance:  fmt.Sprintf("irregular, |ME(2)|-1 ≥ %d blocks; α can grow", 1+params.P+(params.Alpha-1)*params.S),
		},
	}, nil
}
