package entangle

import (
	"bytes"
	"math/rand"
	"testing"

	"aecodes/internal/lattice"
)

// damageSystem applies an identical pseudo-random damage pattern to a
// freshly built store.
func damageSystem(t *testing.T, store *MemoryStore, params lattice.Params, n int, seed int64) {
	t.Helper()
	lat, err := lattice.New(params)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 1; i <= n; i++ {
		if rng.Float64() < 0.35 {
			store.LoseData(i)
		}
		for _, class := range lat.Classes() {
			if rng.Float64() < 0.35 {
				e, err := lat.OutEdge(class, i)
				if err != nil {
					t.Fatal(err)
				}
				store.LoseParity(e)
			}
		}
	}
}

// TestConcurrentRepairMatchesSerial verifies that parallel planning is an
// implementation detail: for every worker count the repair reaches the
// same fixpoint, in the same number of rounds, with identical content.
func TestConcurrentRepairMatchesSerial(t *testing.T) {
	params := lattice.Params{Alpha: 3, S: 2, P: 5}
	const n, blockSize = 300, 16

	serialStore, originals := buildSystem(t, params, n, blockSize, 77)
	damageSystem(t, serialStore, params, n, 123)
	r := mustRepairer(t, params)
	serialStats, err := r.Repair(bg, serialStore, Options{})
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{2, 4, 8} {
		store, _ := buildSystem(t, params, n, blockSize, 77)
		damageSystem(t, store, params, n, 123)
		stats, err := r.Repair(bg, store, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if stats.Rounds != serialStats.Rounds {
			t.Errorf("workers=%d: rounds %d, serial %d", workers, stats.Rounds, serialStats.Rounds)
		}
		if stats.DataRepaired != serialStats.DataRepaired ||
			stats.ParityRepaired != serialStats.ParityRepaired {
			t.Errorf("workers=%d: repaired %d/%d, serial %d/%d", workers,
				stats.DataRepaired, stats.ParityRepaired,
				serialStats.DataRepaired, serialStats.ParityRepaired)
		}
		if stats.DataLoss() != serialStats.DataLoss() {
			t.Errorf("workers=%d: loss %d, serial %d", workers, stats.DataLoss(), serialStats.DataLoss())
		}
		for i := 1; i <= n; i++ {
			got, ok := store.Data(i)
			want, wantOK := serialStore.Data(i)
			if ok != wantOK {
				t.Fatalf("workers=%d: d%d availability diverged", workers, i)
			}
			if ok && !bytes.Equal(got, want) {
				t.Fatalf("workers=%d: d%d content diverged", workers, i)
			}
			if ok && !bytes.Equal(got, originals[i]) {
				t.Fatalf("workers=%d: d%d corrupted", workers, i)
			}
		}
	}
}

// BenchmarkRepairWorkers measures parallel planning speedup on a large
// damaged lattice.
func BenchmarkRepairWorkers(b *testing.B) {
	params := lattice.Params{Alpha: 3, S: 2, P: 5}
	const n, blockSize = 20_000, 1024
	for _, workers := range []int{1, 4, 8} {
		b.Run(map[int]string{1: "serial", 4: "workers4", 8: "workers8"}[workers], func(b *testing.B) {
			enc, err := NewEncoder(params, blockSize)
			if err != nil {
				b.Fatal(err)
			}
			lat := enc.Lattice()
			base := NewMemoryStore(blockSize)
			rng := rand.New(rand.NewSource(1))
			data := make([]byte, blockSize)
			for i := 1; i <= n; i++ {
				rng.Read(data)
				ent, err := enc.Entangle(data)
				if err != nil {
					b.Fatal(err)
				}
				if err := base.PutData(bg, i, data); err != nil {
					b.Fatal(err)
				}
				for _, p := range ent.Parities {
					if err := base.PutParity(bg, p.Edge, p.Data); err != nil {
						b.Fatal(err)
					}
				}
			}
			r, err := NewRepairer(params)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dmgRng := rand.New(rand.NewSource(2))
				for pos := 1; pos <= n; pos++ {
					if dmgRng.Float64() < 0.3 {
						base.LoseData(pos)
					}
					for _, class := range lat.Classes() {
						if dmgRng.Float64() < 0.3 {
							e, err := lat.OutEdge(class, pos)
							if err != nil {
								b.Fatal(err)
							}
							base.LoseParity(e)
						}
					}
				}
				b.StartTimer()
				if _, err := r.Repair(bg, base, Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
