// Package mep finds minimal erasure patterns of alpha entanglement codes —
// the analysis behind §V.A of the paper ("Code Parameters and Fault
// Tolerance", Figs 6–9). It replaces the authors' private Prolog
// verification tool with an exact searcher plus an independent closure
// checker.
//
// A set E of blocks is closed (irrecoverable) when no block in E can be
// repaired assuming every block outside E is available: every pp-tuple of
// every erased data block meets E, and both dp-tuples of every erased
// parity meet E. A minimal erasure ME(x) is an irreducible closed set
// containing exactly x data blocks: removing any one block from the set
// makes some erased block repairable (Wylie's MEL notion [19], extended
// with the data-vs-total-size distinction the paper introduces). |ME(x)|
// denotes the size of the smallest such pattern.
//
// The search exploits a structural theorem about entanglement lattices:
// in a closed pattern, erased parities form runs of consecutive edges
// along strands, and both extremal nodes of every run must be erased data
// nodes (otherwise the extremal edge is repairable through its outside
// endpoint). Conversely, every erased data node needs at least one erased
// incident edge on each of its α strands. The smallest pattern containing
// a given node set D is therefore x plus the cheapest "run cover" per
// strand, computed by dynamic programming over the strand positions of D;
// the searcher enumerates canonical node sets and minimises. Every result
// is re-verified against the independent closure checker before being
// returned.
package mep

import (
	"fmt"
	"sort"

	"aecodes/internal/lattice"
)

// Pattern is an erasure pattern: a set of data nodes and parity edges.
type Pattern struct {
	Params lattice.Params
	Nodes  []int
	Edges  []lattice.Edge
}

// Size returns the total number of blocks in the pattern — the |ME(x)|
// quantity plotted in Figs 8 and 9.
func (p Pattern) Size() int { return len(p.Nodes) + len(p.Edges) }

// DataLoss returns the number of data blocks in the pattern (the x of
// ME(x)).
func (p Pattern) DataLoss() int { return len(p.Nodes) }

// String summarises the pattern.
func (p Pattern) String() string {
	return fmt.Sprintf("%v: |ME(%d)| = %d (%d nodes + %d edges)",
		p.Params, p.DataLoss(), p.Size(), len(p.Nodes), len(p.Edges))
}

// Options tunes the search.
type Options struct {
	// Window is how many positions past the anchor node are considered for
	// the remaining x−1 core nodes. 0 selects a default of 2·s·p+s
	// (x ≥ 4) or 3·s·p (x < 4), which covers every pattern family the
	// paper reports; widen it to double-check stability.
	Window int
	// MaxWalk caps strand walks when measuring hop distances; 0 selects a
	// default of 4·Window.
	MaxWalk int
}

func (o Options) withDefaults(params lattice.Params, x int) Options {
	sp := params.S * params.P
	if params.Alpha == 1 {
		sp = 1
	}
	if o.Window == 0 {
		if x >= 4 {
			o.Window = 2*sp + params.S
		} else {
			o.Window = 3 * sp
		}
		if o.Window < 8 {
			o.Window = 8
		}
	}
	if o.MaxWalk == 0 {
		o.MaxWalk = 4 * o.Window
	}
	return o
}

// HypercubeBound returns the size of the α-dimensional hypercube pattern
// that §V.A identifies as the upper bound for redundancy propagation on
// patterns ME(2^α): 2^α nodes plus α·2^(α−1) edges. For α = 2 this is the
// square (|ME(4)| = 8), for α = 3 the cube (|ME(8)| = 20), and for α = 4
// the conjectured tesseract (|ME(16)| = 48) the paper expects for future
// four-strand-class codes.
func HypercubeBound(alpha int) int {
	nodes := 1 << alpha
	edges := alpha << (alpha - 1)
	return nodes + edges
}

// MinimalErasure returns a smallest minimal erasure pattern with exactly x
// data blocks for the given code parameters. The result is verified to be
// closed and irreducible with the independent checker before returning.
//
// It returns an error for invalid parameters, x < 1, or when no pattern
// exists within the search window (which, for valid entanglement
// parameters, indicates the window was forced too small).
func MinimalErasure(params lattice.Params, x int, opts Options) (Pattern, error) {
	lat, err := lattice.New(params)
	if err != nil {
		return Pattern{}, err
	}
	if x < 1 {
		return Pattern{}, fmt.Errorf("mep: x must be >= 1, got %d", x)
	}
	opts = opts.withDefaults(params, x)

	s := params.S
	sp := s * params.P
	if params.Alpha == 1 {
		sp = 1
	}
	// Anchor far enough from the origin that no candidate edge is virtual.
	base := 4*sp + 4*s + 1 // ≡ 1 mod s, top row
	search := searcher{
		lat:    lat,
		x:      x,
		opts:   opts,
		bestSz: int(^uint(0) >> 1), // max int
	}
	// Row symmetry is broken by the top/bottom wrap rules, so try one
	// anchor per row; column shifts are symmetries, so one column suffices.
	for r := 0; r < s; r++ {
		search.run(base + r)
	}
	if search.best == nil {
		return Pattern{}, fmt.Errorf("mep: no closed pattern with x=%d found for %v within window %d",
			x, params, opts.Window)
	}
	pat := *search.best
	if err := Check(pat); err != nil {
		return Pattern{}, fmt.Errorf("mep: internal error: candidate failed verification: %w", err)
	}
	return pat, nil
}

// searcher carries the enumeration state.
type searcher struct {
	lat    *lattice.Lattice
	x      int
	opts   Options
	best   *Pattern
	bestSz int
}

// run enumerates cores anchored at the given position: the anchor plus
// x−1 nodes drawn from the following Window positions, ascending.
func (s *searcher) run(anchor int) {
	core := make([]int, 1, s.x)
	core[0] = anchor
	s.extend(core, anchor+1, anchor+s.opts.Window)
}

func (s *searcher) extend(core []int, from, to int) {
	if len(core) == s.x {
		s.evaluate(core)
		return
	}
	// Every node needs an incident erased edge on each of its α strands
	// and an edge serves at most two nodes, so any completion carries at
	// least ⌈x·α/2⌉ parity edges; prune when that cannot beat the best.
	if s.x+(s.x*s.lat.Params().Alpha+1)/2 >= s.bestSz {
		return
	}
	for i := from; i <= to; i++ {
		s.extend(append(core, i), i+1, to)
	}
}

// evaluate computes the cheapest closed pattern with exactly this core and
// updates the best.
func (s *searcher) evaluate(core []int) {
	total := s.x
	type runSeg struct {
		class lattice.Class
		start int // node position where the run begins
		hops  int // number of edges
	}
	var segs []runSeg

	for _, class := range s.lat.Classes() {
		groups := s.groupByStrand(class, core)
		for _, nodes := range groups {
			if len(nodes) == 1 {
				return // a strand with a single core node cannot be closed
			}
			cost, runs, ok := s.coverStrand(class, nodes)
			if !ok {
				return
			}
			total += cost
			if total >= s.bestSz {
				return
			}
			for _, r := range runs {
				segs = append(segs, runSeg{class: class, start: r[0], hops: r[1]})
			}
		}
	}
	if total >= s.bestSz {
		return
	}

	// Materialise the winning pattern's edges.
	var edges []lattice.Edge
	for _, seg := range segs {
		cur := seg.start
		for h := 0; h < seg.hops; h++ {
			e, err := s.lat.OutEdge(seg.class, cur)
			if err != nil {
				return
			}
			edges = append(edges, e)
			cur = e.Right
		}
	}
	nodes := make([]int, len(core))
	copy(nodes, core)
	s.best = &Pattern{Params: s.lat.Params(), Nodes: nodes, Edges: edges}
	s.bestSz = total
}

// groupByStrand buckets core nodes by the strand of the given class that
// passes through them.
func (s *searcher) groupByStrand(class lattice.Class, core []int) map[int][]int {
	groups := make(map[int][]int)
	for _, n := range core {
		idx, err := s.lat.StrandIndex(class, n)
		if err != nil {
			return nil
		}
		groups[idx] = append(groups[idx], n)
	}
	return groups
}

// coverStrand returns the minimum number of erased edges needed on one
// strand so that every listed node has an incident erased edge and every
// run terminates at listed nodes, together with the runs chosen as
// (startNode, hopCount) pairs. Nodes are first ordered and positioned
// along the strand by walking it.
func (s *searcher) coverStrand(class lattice.Class, nodes []int) (cost int, runs [][2]int, ok bool) {
	sorted := make([]int, len(nodes))
	copy(sorted, nodes)
	sort.Ints(sorted)

	// pos[i] = hop offset of sorted[i] from sorted[0] along the strand.
	pos := make([]int, len(sorted))
	cur := sorted[0]
	hops := 0
	next := 1
	for next < len(sorted) {
		if hops > s.opts.MaxWalk {
			return 0, nil, false
		}
		e, err := s.lat.OutEdge(class, cur)
		if err != nil {
			return 0, nil, false
		}
		cur = e.Right
		hops++
		for next < len(sorted) && cur == sorted[next] {
			pos[next] = hops
			next++
		}
	}

	// DP over consecutive groups of ≥ 2 nodes: covering a group with one
	// run costs span = pos[last] − pos[first].
	const inf = int(^uint(0) >> 2)
	n := len(sorted)
	f := make([]int, n+1)
	choice := make([]int, n+1) // group start index for the group ending at t−1
	f[0] = 0
	for t := 1; t <= n; t++ {
		f[t] = inf
		for j := 0; j <= t-2; j++ { // group sorted[j..t-1], size ≥ 2
			if f[j] == inf {
				continue
			}
			c := f[j] + pos[t-1] - pos[j]
			if c < f[t] {
				f[t] = c
				choice[t] = j
			}
		}
	}
	if f[n] >= inf {
		return 0, nil, false
	}
	// Reconstruct runs.
	for t := n; t > 0; {
		j := choice[t]
		runs = append(runs, [2]int{sorted[j], pos[t-1] - pos[j]})
		t = j
	}
	return f[n], runs, true
}
