package blockstore

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"aecodes/internal/lattice"
	"aecodes/internal/store"
)

// LatticeView adapts a Cluster to the unified BlockStore dialect so the
// entanglement repair engine can rebuild blocks spread across storage
// locations. Repaired blocks are written back through the placement
// function, which decides where regenerated blocks land (they may move to a
// healthy node, as when "other nodes can do repairs on their behalf",
// §IV.A). Its batch operations take the cluster lock once per batch.
type LatticeView struct {
	cluster   *Cluster
	blockSize int
	// place chooses the node for a (re)written block key.
	place func(key string) int
}

var _ store.BlockStore = (*LatticeView)(nil)

// NewLatticeView returns a view over cluster for blocks of the given size,
// using place to position writes. place must return a valid node id for any
// key.
func NewLatticeView(cluster *Cluster, blockSize int, place func(key string) int) (*LatticeView, error) {
	if cluster == nil {
		return nil, fmt.Errorf("blockstore: nil cluster")
	}
	if blockSize <= 0 {
		return nil, fmt.Errorf("blockstore: block size must be positive, got %d", blockSize)
	}
	if place == nil {
		return nil, fmt.Errorf("blockstore: nil placement function")
	}
	return &LatticeView{cluster: cluster, blockSize: blockSize, place: place}, nil
}

// Data returns data block i and whether its location serves it.
func (v *LatticeView) Data(i int) ([]byte, bool) {
	return v.cluster.Get(DataKey(i))
}

// Parity returns the parity on e and whether its location serves it;
// virtual edges read as zero.
func (v *LatticeView) Parity(e lattice.Edge) ([]byte, bool) {
	if e.IsVirtual() {
		return store.ZeroBlock(v.blockSize), true
	}
	return v.cluster.Get(ParityKey(e))
}

// GetData implements store.Source.
func (v *LatticeView) GetData(ctx context.Context, i int) ([]byte, error) {
	b, ok := v.Data(i)
	if !ok {
		return nil, fmt.Errorf("blockstore: d%d: %w", i, store.ErrNotFound)
	}
	return b, nil
}

// GetParity implements store.Source.
func (v *LatticeView) GetParity(ctx context.Context, e lattice.Edge) ([]byte, error) {
	b, ok := v.Parity(e)
	if !ok {
		return nil, fmt.Errorf("blockstore: parity %v: %w", e, store.ErrNotFound)
	}
	return b, nil
}

// PutData implements store.Single.
func (v *LatticeView) PutData(ctx context.Context, i int, b []byte) error {
	if len(b) != v.blockSize {
		return fmt.Errorf("blockstore: data block %d has %d bytes, want %d", i, len(b), v.blockSize)
	}
	key := DataKey(i)
	return v.cluster.Put(v.place(key), key, b)
}

// PutParity implements store.Single.
func (v *LatticeView) PutParity(ctx context.Context, e lattice.Edge, b []byte) error {
	if e.IsVirtual() {
		return fmt.Errorf("blockstore: cannot store virtual edge %v", e)
	}
	if len(b) != v.blockSize {
		return fmt.Errorf("blockstore: parity %v has %d bytes, want %d", e, len(b), v.blockSize)
	}
	key := ParityKey(e)
	return v.cluster.Put(v.place(key), key, b)
}

// refKey names the block a ref addresses.
func refKey(r store.Ref) string {
	if r.Parity {
		return ParityKey(r.Edge)
	}
	return DataKey(r.Index)
}

// GetMany implements store.BlockStore: the whole batch reads under one
// cluster lock acquisition. Entries whose location is down are nil.
func (v *LatticeView) GetMany(ctx context.Context, refs []store.Ref) ([][]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([][]byte, len(refs))
	v.cluster.mu.RLock()
	defer v.cluster.mu.RUnlock()
	for idx, r := range refs {
		if r.Parity && r.Edge.IsVirtual() {
			out[idx] = store.ZeroBlock(v.blockSize)
			continue
		}
		out[idx] = v.cluster.getLocked(refKey(r))
	}
	return out, nil
}

// PutMany implements store.BlockStore: the batch is validated and placed
// first, then applied under one cluster lock acquisition.
func (v *LatticeView) PutMany(ctx context.Context, blocks []store.Block) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	type placed struct {
		node int
		key  string
		data []byte
	}
	ps := make([]placed, len(blocks))
	for idx, b := range blocks {
		if b.Ref.Parity && b.Ref.Edge.IsVirtual() {
			return fmt.Errorf("blockstore: cannot store virtual edge %v", b.Ref.Edge)
		}
		if len(b.Data) != v.blockSize {
			return fmt.Errorf("blockstore: %v has %d bytes, want %d", b.Ref, len(b.Data), v.blockSize)
		}
		key := refKey(b.Ref)
		cp := make([]byte, len(b.Data))
		copy(cp, b.Data)
		ps[idx] = placed{node: v.place(key), key: key, data: cp}
	}
	v.cluster.mu.Lock()
	defer v.cluster.mu.Unlock()
	for _, p := range ps {
		if err := v.cluster.putLocked(p.node, p.key, p.data); err != nil {
			return err
		}
	}
	return nil
}

// Missing implements store.Single: every block whose location is down.
func (v *LatticeView) Missing(ctx context.Context) (store.Missing, error) {
	if err := ctx.Err(); err != nil {
		return store.Missing{}, err
	}
	return store.Missing{Data: v.MissingData(), Parities: v.MissingParities()}, nil
}

// MissingData lists data blocks whose node is down, ascending.
func (v *LatticeView) MissingData() []int {
	var out []int
	for _, key := range v.cluster.UnavailableKeys() {
		i, ok := parseDataKey(key)
		if !ok {
			continue
		}
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// MissingParities lists parity blocks whose node is down.
func (v *LatticeView) MissingParities() []lattice.Edge {
	var out []lattice.Edge
	for _, key := range v.cluster.UnavailableKeys() {
		e, ok := parseParityKey(key)
		if !ok {
			continue
		}
		out = append(out, e)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Class != out[b].Class {
			return out[a].Class < out[b].Class
		}
		if out[a].Left != out[b].Left {
			return out[a].Left < out[b].Left
		}
		return out[a].Right < out[b].Right
	})
	return out
}

func parseDataKey(key string) (int, bool) {
	rest, ok := strings.CutPrefix(key, "d:")
	if !ok {
		return 0, false
	}
	i, err := strconv.Atoi(rest)
	if err != nil {
		return 0, false
	}
	return i, true
}

func parseParityKey(key string) (lattice.Edge, bool) {
	rest, ok := strings.CutPrefix(key, "p:")
	if !ok {
		return lattice.Edge{}, false
	}
	parts := strings.Split(rest, ":")
	if len(parts) != 3 {
		return lattice.Edge{}, false
	}
	var class lattice.Class
	switch parts[0] {
	case "h":
		class = lattice.Horizontal
	case "rh":
		class = lattice.RightHanded
	case "lh":
		class = lattice.LeftHanded
	default:
		return lattice.Edge{}, false
	}
	left, err := strconv.Atoi(parts[1])
	if err != nil {
		return lattice.Edge{}, false
	}
	right, err := strconv.Atoi(parts[2])
	if err != nil {
		return lattice.Edge{}, false
	}
	return lattice.Edge{Class: class, Left: left, Right: right}, true
}
