// Package placement maps encoded blocks to storage locations.
//
// "As with any other redundancy method, storage systems use mapping
// algorithms to store and locate encoded blocks according a placement
// policy and the available resources" (§III.B "Implementation Details").
// The paper's simulations use random placement over n = 100 locations and
// discuss round-robin as the placement its earlier work assumed (§V.C
// "Block Placements"); deterministic hashing is the natural policy for the
// cooperative use case, where "blocks are located by their key" (§IV.A).
package placement

import (
	"fmt"
	"hash/fnv"
	"math"
)

// Policy assigns every block ordinal a location in [0, Locations()).
// Policies are deterministic: the same ordinal always maps to the same
// location, so the simulator and a real system agree on where blocks live
// without shared state. Implementations are safe for concurrent use.
type Policy interface {
	// Place returns the location of block ordinal id.
	Place(id uint64) int
	// Locations returns the number of locations n.
	Locations() int
	// Name identifies the policy in reports.
	Name() string
}

// Random places blocks uniformly at random, reproducing the paper's
// "each block is assigned a random number from 0 to n−1". Determinism comes
// from hashing (seed, id) with a SplitMix64-style mixer rather than from a
// shared PRNG stream, so placement is stateless and order-independent.
type Random struct {
	n    int
	seed uint64
}

var _ Policy = (*Random)(nil)

// NewRandom returns a random policy over n locations.
// It returns an error when n is not positive.
func NewRandom(n int, seed uint64) (*Random, error) {
	if n <= 0 {
		return nil, fmt.Errorf("placement: need at least one location, got %d", n)
	}
	return &Random{n: n, seed: seed}, nil
}

// Place implements Policy.
func (r *Random) Place(id uint64) int {
	return int(mix64(id^r.seed) % uint64(r.n))
}

// Locations implements Policy.
func (r *Random) Locations() int { return r.n }

// Name implements Policy.
func (r *Random) Name() string { return fmt.Sprintf("random(n=%d)", r.n) }

// mix64 is the SplitMix64 finalizer: a bijective avalanche mixer whose
// output is uniform over uint64 for distinct inputs.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// RoundRobin cycles through locations in ordinal order — the placement the
// paper's earlier evaluation assumed ("we assumed a round robin placement
// policy", §V.C), which guarantees that lattice neighbours land in distinct
// failure domains.
type RoundRobin struct {
	n int
}

var _ Policy = (*RoundRobin)(nil)

// NewRoundRobin returns a round-robin policy over n locations.
// It returns an error when n is not positive.
func NewRoundRobin(n int) (*RoundRobin, error) {
	if n <= 0 {
		return nil, fmt.Errorf("placement: need at least one location, got %d", n)
	}
	return &RoundRobin{n: n}, nil
}

// Place implements Policy.
func (r *RoundRobin) Place(id uint64) int { return int(id % uint64(r.n)) }

// Locations implements Policy.
func (r *RoundRobin) Locations() int { return r.n }

// Name implements Policy.
func (r *RoundRobin) Name() string { return fmt.Sprintf("round-robin(n=%d)", r.n) }

// KeyHash places named blocks by FNV-1a hash of their key — "a value
// derived from the node id and the block position in the lattice (such as a
// hash of both values)" (§IV.A). Use with the cooperative store, where
// blocks have string keys instead of dense ordinals.
type KeyHash struct {
	n int
}

// NewKeyHash returns a key-hashing policy over n locations.
// It returns an error when n is not positive.
func NewKeyHash(n int) (*KeyHash, error) {
	if n <= 0 {
		return nil, fmt.Errorf("placement: need at least one location, got %d", n)
	}
	return &KeyHash{n: n}, nil
}

// PlaceKey returns the location of the block with the given key.
func (k *KeyHash) PlaceKey(key string) int {
	h := fnv.New64a()
	h.Write([]byte(key)) // never fails per hash.Hash contract
	return int(h.Sum64() % uint64(k.n))
}

// Locations returns the number of locations n.
func (k *KeyHash) Locations() int { return k.n }

// Name identifies the policy in reports.
func (k *KeyHash) Name() string { return fmt.Sprintf("key-hash(n=%d)", k.n) }

// Histogram counts blocks per location for the first count ordinals — the
// §V.C load-balance statistics ("a mean of 14,000 blocks per site and a
// standard deviation σ = 130.88").
func Histogram(p Policy, count uint64) []int {
	out := make([]int, p.Locations())
	for id := uint64(0); id < count; id++ {
		out[p.Place(id)]++
	}
	return out
}

// MeanStddev returns the mean and population standard deviation of a
// histogram.
func MeanStddev(hist []int) (mean, stddev float64) {
	if len(hist) == 0 {
		return 0, 0
	}
	total := 0
	for _, v := range hist {
		total += v
	}
	mean = float64(total) / float64(len(hist))
	var ss float64
	for _, v := range hist {
		d := float64(v) - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(hist)))
}
