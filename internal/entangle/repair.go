package entangle

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"aecodes/internal/hotpath"
	"aecodes/internal/lattice"
	"aecodes/internal/store"
	"aecodes/internal/xorblock"
)

// ErrUnrepairable is returned by the single-block repair functions when no
// complete tuple is available this round. Round-based repair treats it as
// "try again next round".
var ErrUnrepairable = errors.New("entangle: no complete repair tuple available")

// Repairer rebuilds missing blocks using the lattice geometry. Repairers are
// stateless and safe for concurrent use.
//
// The repairer reads through the context-aware Source dialect and treats
// any read error as "block unavailable" — a node that cannot be reached
// holds nothing this round. Context cancellation is checked at every
// tuple search and round boundary and surfaces as ctx.Err().
type Repairer struct {
	lat *lattice.Lattice
}

// NewRepairer returns a repairer for the given code parameters.
func NewRepairer(params lattice.Params) (*Repairer, error) {
	lat, err := lattice.New(params)
	if err != nil {
		return nil, err
	}
	return &Repairer{lat: lat}, nil
}

// Lattice returns the geometry this repairer operates on.
func (r *Repairer) Lattice() *lattice.Lattice { return r.lat }

// available adapts a dialect read to the planner's availability view: any
// error means the block cannot be used this round.
func available(b []byte, err error) ([]byte, bool) {
	if err != nil {
		return nil, false
	}
	return b, true
}

// RepairData rebuilds data block i from the first complete pp-tuple among
// its α strands — "the decoder uses the shortest available path", and the
// one-hop paths are exactly the pp-tuples. The repair cost is always one
// XOR of two blocks, regardless of the code parameters (§III: none of the
// three parameters change the cost of a single failure).
//
// It returns ErrUnrepairable when every tuple is incomplete.
func (r *Repairer) RepairData(ctx context.Context, src Source, i int) ([]byte, error) {
	in, out, err := r.findDataTuple(ctx, src, i)
	if err != nil {
		return nil, err
	}
	return xorblock.Xor(in, out)
}

// RepairDataInto is RepairData writing into a caller-supplied buffer, so
// hot repair loops can recycle blocks instead of allocating one per repair.
// dst must have the block size; it is untouched on ErrUnrepairable.
func (r *Repairer) RepairDataInto(ctx context.Context, dst []byte, src Source, i int) error {
	in, out, err := r.findDataTuple(ctx, src, i)
	if err != nil {
		return err
	}
	return xorblock.XorInto(dst, in, out)
}

// findDataTuple locates the first complete pp-tuple for data block i and
// returns its two parity blocks.
func (r *Repairer) findDataTuple(ctx context.Context, src Source, i int) (in, out []byte, err error) {
	tuples, err := r.lat.Tuples(i)
	if err != nil {
		return nil, nil, err
	}
	for _, t := range tuples {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		in, okIn := available(src.GetParity(ctx, t.In))
		if !okIn {
			continue
		}
		out, okOut := available(src.GetParity(ctx, t.Out))
		if !okOut {
			continue
		}
		return in, out, nil
	}
	return nil, nil, ErrUnrepairable
}

// RepairParity rebuilds the parity on edge e from either of its two
// dp-tuples: p_{i,j} = d_i XOR p_{h,i} = d_j XOR p_{j,k} (§III.B: "there are
// always two options").
//
// It returns ErrUnrepairable when both options are incomplete.
func (r *Repairer) RepairParity(ctx context.Context, src Source, e lattice.Edge) ([]byte, error) {
	d, p, err := r.findParityOption(ctx, src, e)
	if err != nil {
		return nil, err
	}
	return xorblock.Xor(d, p)
}

// RepairParityInto is RepairParity writing into a caller-supplied buffer.
// dst must have the block size; it is untouched on ErrUnrepairable.
func (r *Repairer) RepairParityInto(ctx context.Context, dst []byte, src Source, e lattice.Edge) error {
	d, p, err := r.findParityOption(ctx, src, e)
	if err != nil {
		return err
	}
	return xorblock.XorInto(dst, d, p)
}

// findParityOption locates the first complete dp-tuple for the parity on e
// and returns the data block and companion parity.
func (r *Repairer) findParityOption(ctx context.Context, src Source, e lattice.Edge) (d, p []byte, err error) {
	opts, err := r.lat.ParityOptions(e)
	if err != nil {
		return nil, nil, err
	}
	for _, opt := range opts {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		d, okD := available(src.GetData(ctx, opt.Data))
		if !okD {
			continue
		}
		p, okP := available(src.GetParity(ctx, opt.Parity))
		if !okP {
			continue
		}
		return d, p, nil
	}
	return nil, nil, ErrUnrepairable
}

// Options configures round-based repair.
type Options struct {
	// MaxRounds caps the number of repair rounds; 0 means run until
	// fixpoint.
	MaxRounds int
	// DataOnly restricts repair to data blocks ("minimal maintenance",
	// §V.C.2): missing parities are left unrepaired.
	DataOnly bool
	// Workers sets the number of goroutines planning repairs within a
	// round ("the decoder can repair multiple single failures in
	// parallel", §III.A). Values below 2 select the serial planner. The
	// result is identical for any worker count: planning is read-only
	// against the frozen pre-round state and commits stay ordered.
	Workers int
	// Patience is the number of consecutive zero-progress rounds tolerated
	// before declaring a fixpoint. The default 0 stops at the first round
	// that repairs nothing (the paper's Table VI semantics over a stable
	// store). Over a flaky backend a round can repair nothing because
	// reads were dropped rather than because nothing is repairable, so a
	// small Patience lets repair ride out transient unavailability.
	Patience int
	// RetryDelay is the pause between prefetch retry attempts and before
	// re-enumerating after a zero-progress round, giving a blipped
	// backend (a transport pool mid-redial, a restarting node) real time
	// to recover instead of burning every retry and Patience round in
	// microseconds. Zero defaults to 50ms — on the order of the
	// transport's first redial backoff; negative disables the pause.
	RetryDelay time.Duration
	// RateLimit, when non-nil, meters the run's I/O: the engine charges
	// every fetched and committed block against it and stalls when the
	// budget is spent. Background maintenance shares one limiter across
	// all of its tasks so foreground traffic keeps its p99.
	RateLimit Limiter
	// Priority tags the run for schedulers sharing a rate budget; the
	// engine records it but does not act on it.
	Priority Priority
	// Scope selects the repair surface: whole-lattice rounds (the
	// default, ScopeLattice), exactly Targets (ScopeBlock), or Targets
	// plus the missing tuple companions needed to complete them
	// (ScopeTuple). See the Scope constants.
	Scope Scope
	// Targets lists the blocks scoped repair rebuilds; ignored under
	// ScopeLattice.
	Targets []store.Ref
}

// retryDelay resolves the option's default.
func (o Options) retryDelay() time.Duration {
	if o.RetryDelay == 0 {
		return 50 * time.Millisecond
	}
	if o.RetryDelay < 0 {
		return 0
	}
	return o.RetryDelay
}

// RoundStats records what one synchronous repair round achieved.
type RoundStats struct {
	Round          int
	DataRepaired   int
	ParityRepaired int
}

// Stats summarises a full Repair run.
type Stats struct {
	// Rounds is the number of rounds that performed at least one repair.
	Rounds int
	// DataRepaired and ParityRepaired count successfully rebuilt blocks.
	DataRepaired   int
	ParityRepaired int
	// FirstRoundData counts data blocks rebuilt in round 1 — the paper's
	// "single failures solved at the first round" numerator (Fig 13).
	FirstRoundData int
	// PerRound holds one entry per executed round.
	PerRound []RoundStats
	// UnrepairedData and UnrepairedParities list blocks that remained
	// missing at fixpoint (irrecoverable under the current availability).
	UnrepairedData     []int
	UnrepairedParities []lattice.Edge
	// BytesRead counts block bytes the engine fetched to plan repairs —
	// the numerator of bytes-moved-per-repaired-block. Scoped repair
	// reads only the tuples it probes (≈2 blocks per repaired block);
	// whole-lattice rounds prefetch the full working set.
	BytesRead int64
}

// DataLoss returns the number of data blocks the engine failed to repair —
// the paper's data-loss metric (Fig 11).
func (s Stats) DataLoss() int { return len(s.UnrepairedData) }

// Repair runs synchronous repair rounds over the store until every missing
// block is rebuilt, a fixpoint without progress is reached, or MaxRounds is
// hit. Within a round every repair reads only blocks that were available
// when the round started, so the round count matches the paper's Table VI
// semantics; newly repaired blocks become usable in the next round.
//
// Each round issues one Missing enumeration, one GetMany prefetch of the
// round's entire repair-tuple working set into an engine-owned round
// cache, and commits all of its repairs with a single PutMany batch —
// so a batch-native store moves a whole round in a constant number of
// requests per storage location, and planning reads never touch the
// backend. The prefetch freezes the pre-round state: every planner reads
// the same snapshot whatever the worker count.
func (r *Repairer) Repair(ctx context.Context, st Store, opts Options) (Stats, error) {
	var stats Stats
	var err error
	if opts.Scope != ScopeLattice {
		stats, err = r.repairScoped(ctx, st, opts)
	} else {
		stats, err = r.repairLattice(ctx, st, opts)
	}
	recordRepairObs(opts, stats, err)
	return stats, err
}

// repairLattice is the whole-lattice ScopeLattice engine behind Repair.
func (r *Repairer) repairLattice(ctx context.Context, st Store, opts Options) (Stats, error) {
	var stats Stats
	// final remembers the last enumeration when nothing was committed
	// after it, so the usual exits (lattice healthy, fixpoint) do not pay
	// a second whole-store sweep just for the closing statistics.
	var final *store.Missing
	zeroRounds := 0
	for round := 1; ; round++ {
		if opts.MaxRounds > 0 && round > opts.MaxRounds {
			break
		}
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		missing, err := st.Missing(ctx)
		if err != nil {
			return stats, fmt.Errorf("entangle: enumerating missing blocks: %w", err)
		}
		missingPar := missing.Parities
		if opts.DataOnly {
			missingPar = nil
		}
		if len(missing.Data) == 0 && len(missingPar) == 0 {
			final = &missing
			break
		}

		// Prefetch the round's whole repair-tuple working set with one
		// batch, then plan against that frozen snapshot. A prefetch whose
		// bounded retries all failed is a backend outage lasting beyond
		// this round: Patience treats it like a zero-progress round (the
		// next enumeration starts over), and only when Patience is
		// exhausted does it surface as the run's error.
		cache, err := r.prefetchRound(ctx, st, missing.Data, missingPar, opts, &stats)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return stats, cerr
			}
			zeroRounds++
			if zeroRounds > opts.Patience {
				return stats, fmt.Errorf("entangle: prefetching round %d: %w", round, err)
			}
			if serr := store.SleepCtx(ctx, opts.retryDelay()); serr != nil {
				return stats, serr
			}
			continue
		}
		dataFixes, parFixes, err := r.planRound(ctx, cache, missing.Data, missingPar, opts.Workers)
		if err != nil {
			return stats, err
		}

		if len(dataFixes) == 0 && len(parFixes) == 0 {
			zeroRounds++
			if zeroRounds > opts.Patience {
				final = &missing
				break // fixpoint: nothing more is repairable
			}
			// Flaky reads may have starved this round; give the backend
			// time to recover before trying again.
			if serr := store.SleepCtx(ctx, opts.retryDelay()); serr != nil {
				return stats, serr
			}
			continue
		}
		zeroRounds = 0

		// ...then commit the round as one batch, making this round's
		// repairs visible to the next. Store implementations copy (or
		// transmit) on PutMany — see the Store contract — so the planner's
		// pooled buffers can be recycled as soon as the commit returns,
		// keeping whole-round repair allocation-free in steady state.
		commit := make([]store.Block, 0, len(dataFixes)+len(parFixes))
		var commitBytes int64
		for _, f := range dataFixes {
			commit = append(commit, store.Block{Ref: store.DataRef(f.pos), Data: f.buf})
			commitBytes += int64(len(f.buf))
		}
		for _, f := range parFixes {
			commit = append(commit, store.Block{Ref: store.ParityRef(f.edge), Data: f.buf})
			commitBytes += int64(len(f.buf))
		}
		if opts.RateLimit != nil {
			if lerr := opts.RateLimit.Acquire(ctx, len(commit), commitBytes); lerr != nil {
				for _, b := range commit {
					xorblock.PoolFor(len(b.Data)).Put(b.Data)
				}
				return stats, lerr
			}
		}
		err = st.PutMany(ctx, commit)
		for _, b := range commit {
			xorblock.PoolFor(len(b.Data)).Put(b.Data)
		}
		if err != nil {
			return stats, fmt.Errorf("entangle: committing round %d (%d blocks): %w", round, len(commit), err)
		}

		// Rounds counts productive rounds only, whatever zero-progress
		// Patience rounds were interleaved: PerRound[i].Round == i+1 always
		// holds, and the Table VI round count stays comparable across
		// stable and flaky backends.
		stats.Rounds++
		rs := RoundStats{Round: stats.Rounds, DataRepaired: len(dataFixes), ParityRepaired: len(parFixes)}
		stats.PerRound = append(stats.PerRound, rs)
		stats.DataRepaired += rs.DataRepaired
		stats.ParityRepaired += rs.ParityRepaired
		if stats.Rounds == 1 {
			stats.FirstRoundData = rs.DataRepaired
		}
	}
	if final == nil {
		// Only the MaxRounds exit lands here: a commit happened after the
		// last enumeration, so the accounting needs a fresh sweep.
		m, err := st.Missing(ctx)
		if err != nil {
			return stats, fmt.Errorf("entangle: final missing-block accounting: %w", err)
		}
		final = &m
	}
	stats.UnrepairedData = final.Data
	stats.UnrepairedParities = final.Parities
	return stats, nil
}

// roundCache is the engine-owned snapshot of one repair round's working
// set: every block any repair tuple of the round's missing blocks could
// read, fetched with a single GetMany before planning starts. It serves
// the planner as a Source — a ref absent from the snapshot (or fetched as
// unavailable) reads as ErrNotFound, so a concurrent fault mid-round
// cannot make two planners disagree about availability. The cache is
// read-only after construction and therefore safe for any number of
// planner goroutines.
type roundCache struct {
	blockSize int // learned from the first fetched block; 0 if none
	data      map[int][]byte
	par       map[edgeKey][]byte
}

var _ Source = (*roundCache)(nil)

// GetData implements Source against the snapshot.
func (c *roundCache) GetData(ctx context.Context, i int) ([]byte, error) {
	if b := c.data[i]; b != nil {
		return b, nil
	}
	return nil, fmt.Errorf("entangle: d%d not in round snapshot: %w", i, store.ErrNotFound)
}

// GetParity implements Source against the snapshot; virtual edges read as
// zero blocks once any real block has told the cache the block size.
func (c *roundCache) GetParity(ctx context.Context, e lattice.Edge) ([]byte, error) {
	if e.IsVirtual() {
		if c.blockSize == 0 {
			// Nothing real was fetched, so no tuple can complete anyway.
			return nil, fmt.Errorf("entangle: parity %v: %w", e, store.ErrNotFound)
		}
		return store.ZeroBlock(c.blockSize), nil
	}
	if b := c.par[keyOf(e)]; b != nil {
		return b, nil
	}
	return nil, fmt.Errorf("entangle: parity %v not in round snapshot: %w", e, store.ErrNotFound)
}

// prefetchAttempts bounds the in-round retries of the working-set batch,
// so a short ErrUnavailable burst from a flaky backend costs a retry
// instead of aborting the whole repair run.
const prefetchAttempts = 3

// workingSet enumerates, deduplicated, every block the round's planners
// may read: both parities of every pp-tuple of each missing data block,
// and the data block plus companion parity of every dp-tuple option of
// each missing parity. Virtual edges are excluded (they never need
// fetching).
func (r *Repairer) workingSet(missingData []int, missingPar []lattice.Edge) ([]store.Ref, error) {
	var refs []store.Ref
	seenData := make(map[int]bool)
	seenPar := make(map[edgeKey]bool)
	addData := func(i int) {
		if !seenData[i] {
			seenData[i] = true
			refs = append(refs, store.DataRef(i))
		}
	}
	addPar := func(e lattice.Edge) {
		if e.IsVirtual() {
			return
		}
		if k := keyOf(e); !seenPar[k] {
			seenPar[k] = true
			refs = append(refs, store.ParityRef(e))
		}
	}
	for _, i := range missingData {
		tuples, err := r.lat.Tuples(i)
		if err != nil {
			return nil, err
		}
		for _, t := range tuples {
			addPar(t.In)
			addPar(t.Out)
		}
	}
	for _, e := range missingPar {
		opts, err := r.lat.ParityOptions(e)
		if err != nil {
			return nil, err
		}
		for _, opt := range opts {
			addData(opt.Data)
			addPar(opt.Parity)
		}
	}
	return refs, nil
}

// prefetchRound issues the round's single GetMany over the working set
// and builds the snapshot the planners read from. A failed batch is
// retried a bounded number of times with delay between attempts (flaky
// backends burst; pools need their redial backoff to land); nil entries
// — blocks the store cannot serve — are recorded as known-missing.
// Fetched bytes are counted into stats and charged against the rate
// limiter after the batch lands (the debt model: the engine only learns
// sizes by reading).
func (r *Repairer) prefetchRound(ctx context.Context, st Store, missingData []int, missingPar []lattice.Edge, opts Options, stats *Stats) (*roundCache, error) {
	refs, err := r.workingSet(missingData, missingPar)
	if err != nil {
		return nil, err
	}
	cache := &roundCache{
		data: make(map[int][]byte, len(missingPar)),
		par:  make(map[edgeKey][]byte, len(refs)),
	}
	if len(refs) == 0 {
		return cache, nil
	}
	var blocks [][]byte
	for attempt := 1; ; attempt++ {
		blocks, err = st.GetMany(ctx, refs)
		if err == nil {
			break
		}
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		if attempt >= prefetchAttempts {
			return nil, fmt.Errorf("entangle: working-set prefetch failed after %d attempts: %w", attempt, err)
		}
		if serr := store.SleepCtx(ctx, opts.retryDelay()); serr != nil {
			return nil, serr
		}
	}
	if len(blocks) != len(refs) {
		return nil, fmt.Errorf("entangle: working-set prefetch returned %d entries, want %d", len(blocks), len(refs))
	}
	var fetched int64
	served := 0
	for idx, ref := range refs {
		b := blocks[idx]
		if b != nil {
			if cache.blockSize == 0 {
				cache.blockSize = len(b)
			}
			fetched += int64(len(b))
			served++
		}
		if ref.Parity {
			cache.par[keyOf(ref.Edge)] = b
		} else {
			cache.data[ref.Index] = b
		}
	}
	stats.BytesRead += fetched
	hotpath.CountRepairRead(int(fetched))
	if opts.RateLimit != nil {
		if err := opts.RateLimit.Acquire(ctx, served, fetched); err != nil {
			return nil, err
		}
	}
	return cache, nil
}

// dataFix and parFix are planned repairs awaiting commit.
type dataFix struct {
	pos int
	buf []byte
}

type parFix struct {
	edge lattice.Edge
	buf  []byte
}

// planRound computes every repair possible against the round snapshot
// without committing anything. With workers ≥ 2 the planning fans
// out over goroutines; results keep the input order either way, so the
// round outcome is identical.
func (r *Repairer) planRound(ctx context.Context, src Source, missingData []int, missingPar []lattice.Edge, workers int) ([]dataFix, []parFix, error) {
	if workers < 2 {
		return r.planSerial(ctx, src, missingData, missingPar)
	}
	dataBufs := make([][]byte, len(missingData))
	parBufs := make([][]byte, len(missingPar))
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for idx := w; idx < len(missingData); idx += workers {
				buf, err := r.repairDataPooled(ctx, src, missingData[idx])
				if errors.Is(err, ErrUnrepairable) {
					continue
				}
				if err != nil {
					errs[w] = fmt.Errorf("entangle: repairing d%d: %w", missingData[idx], err)
					return
				}
				dataBufs[idx] = buf
			}
			for idx := w; idx < len(missingPar); idx += workers {
				buf, err := r.repairParityPooled(ctx, src, missingPar[idx])
				if errors.Is(err, ErrUnrepairable) {
					continue
				}
				if err != nil {
					errs[w] = fmt.Errorf("entangle: repairing %v: %w", missingPar[idx], err)
					return
				}
				parBufs[idx] = buf
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	var dataFixes []dataFix
	for idx, buf := range dataBufs {
		if buf != nil {
			dataFixes = append(dataFixes, dataFix{pos: missingData[idx], buf: buf})
		}
	}
	var parFixes []parFix
	for idx, buf := range parBufs {
		if buf != nil {
			parFixes = append(parFixes, parFix{edge: missingPar[idx], buf: buf})
		}
	}
	return dataFixes, parFixes, nil
}

func (r *Repairer) planSerial(ctx context.Context, src Source, missingData []int, missingPar []lattice.Edge) ([]dataFix, []parFix, error) {
	dataFixes := make([]dataFix, 0, len(missingData))
	parFixes := make([]parFix, 0, len(missingPar))
	for _, i := range missingData {
		buf, err := r.repairDataPooled(ctx, src, i)
		if errors.Is(err, ErrUnrepairable) {
			continue
		}
		if err != nil {
			return nil, nil, fmt.Errorf("entangle: repairing d%d: %w", i, err)
		}
		dataFixes = append(dataFixes, dataFix{pos: i, buf: buf})
	}
	for _, e := range missingPar {
		buf, err := r.repairParityPooled(ctx, src, e)
		if errors.Is(err, ErrUnrepairable) {
			continue
		}
		if err != nil {
			return nil, nil, fmt.Errorf("entangle: repairing %v: %w", e, err)
		}
		parFixes = append(parFixes, parFix{edge: e, buf: buf})
	}
	return dataFixes, parFixes, nil
}

// repairDataPooled is RepairData drawing its output from the process-wide
// block pool; the Repair commit loop returns the buffer after PutMany.
func (r *Repairer) repairDataPooled(ctx context.Context, src Source, i int) ([]byte, error) {
	in, out, err := r.findDataTuple(ctx, src, i)
	if err != nil {
		return nil, err
	}
	buf := xorblock.PoolFor(len(in)).Get()
	if err := xorblock.XorInto(buf, in, out); err != nil {
		xorblock.PoolFor(len(buf)).Put(buf)
		return nil, err
	}
	return buf, nil
}

// repairParityPooled is RepairParity drawing its output from the
// process-wide block pool.
func (r *Repairer) repairParityPooled(ctx context.Context, src Source, e lattice.Edge) ([]byte, error) {
	d, p, err := r.findParityOption(ctx, src, e)
	if err != nil {
		return nil, err
	}
	buf := xorblock.PoolFor(len(d)).Get()
	if err := xorblock.XorInto(buf, d, p); err != nil {
		xorblock.PoolFor(len(buf)).Put(buf)
		return nil, err
	}
	return buf, nil
}

// AuditResult reports the consistency of one data block against its α
// strands, the observable side of the anti-tampering property (§III): a
// modified block disagrees with every strand the attacker did not rewrite.
type AuditResult struct {
	Index int
	// Consistent[c] is true when d XOR p_{h,i} == p_{i,j} holds on strand
	// class c. Checked[c] is false when either parity was unavailable.
	Consistent map[lattice.Class]bool
	Checked    map[lattice.Class]bool
}

// Clean reports whether every checked strand agreed with the block.
func (a AuditResult) Clean() bool {
	for class, checked := range a.Checked {
		if checked && !a.Consistent[class] {
			return false
		}
	}
	return true
}

// CheckedStrands returns how many strands could be verified.
func (a AuditResult) CheckedStrands() int {
	n := 0
	for _, ok := range a.Checked {
		if ok {
			n++
		}
	}
	return n
}

// Audit verifies data block i against each of its α strands. A block that
// fails the audit on some strand has been modified after entanglement (or
// the strand has): to tamper undetectably an attacker must recompute "all
// the parities computed from its position to the closest strand extremity"
// on every one of the α strands (§III).
func (r *Repairer) Audit(ctx context.Context, src Source, i int) (AuditResult, error) {
	res := AuditResult{
		Index:      i,
		Consistent: make(map[lattice.Class]bool, r.lat.Params().Alpha),
		Checked:    make(map[lattice.Class]bool, r.lat.Params().Alpha),
	}
	d, ok := available(src.GetData(ctx, i))
	if !ok {
		return res, fmt.Errorf("entangle: data block %d unavailable for audit", i)
	}
	tuples, err := r.lat.Tuples(i)
	if err != nil {
		return res, err
	}
	for _, t := range tuples {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		in, okIn := available(src.GetParity(ctx, t.In))
		out, okOut := available(src.GetParity(ctx, t.Out))
		if !okIn || !okOut {
			res.Checked[t.In.Class] = false
			continue
		}
		want, err := xorblock.Xor(d, in)
		if err != nil {
			return res, err
		}
		res.Checked[t.In.Class] = true
		res.Consistent[t.In.Class] = xorblock.Equal(want, out)
	}
	return res, nil
}
