// Cluster operations: OpNodeStat and OpUsage are the control-plane ops
// behind the cluster manager (internal/cluster). OpNodeStat is a storage
// node's heartbeat — capacity, live bytes, segment-store pressure and the
// per-tenant usage signals the tenant registry computes — sent to a
// manager that tracks membership and places lattice volumes. OpUsage
// answers per-tenant byte/block usage: a node reports its own registry's
// accounting, a manager the fleet-wide aggregate, so operators and
// brokers read usage instead of guessing it from quota refusals.
//
// Payload encodings (big endian, nested inside the normal frame; all
// counters are uint64 on the wire and must fit int64):
//
//	nodeStat := version(1) addrLen(2) addr capacity(8) used(8)
//	            segments(8) deadBytes(8) count(4) usage*
//	usage    := idLen(2) id bytes(8) blocks(8)
//	usageQ   := (empty; the frame key names the tenant, "" = all)
//	usageR   := count(4) usage*
//
// The heartbeat's frame key carries the node ID. Oversized or malformed
// frames earn a StatusError response, not a dropped connection.
package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"net"
)

// NodeStatVersion is the heartbeat payload version this build speaks. A
// server refuses other versions with StatusError, so an incompatible
// future heartbeat fails closed instead of half-parsing.
const NodeStatVersion byte = 1

// TenantUsage is one tenant's live footprint as carried by heartbeat and
// usage frames. The anonymous tenant travels under the empty ID.
type TenantUsage struct {
	// Tenant is the tenant ID ("" = anonymous).
	Tenant string
	// Bytes is the tenant's live block payload bytes.
	Bytes int64
	// Blocks is the tenant's live block count.
	Blocks int64
}

// NodeStat is one storage node's heartbeat: identity, capacity and the
// pressure signals a cluster manager places lattice volumes by.
type NodeStat struct {
	// ID names the node; it travels as the heartbeat frame's key.
	ID string
	// Addr is the address brokers should dial to reach the node.
	Addr string
	// Capacity is the node's configured byte capacity; 0 means
	// unbounded (the node never refuses for space).
	Capacity int64
	// Used is the node's live payload bytes across all tenants.
	Used int64
	// Segments is the durable log's segment-file count (0 when the node
	// is memory-only).
	Segments int64
	// DeadBytes is the reclaimable log space — the node's compaction
	// pressure.
	DeadBytes int64
	// Tenants carries the per-tenant usage the node's registry
	// computes; empty on single-tenant nodes.
	Tenants []TenantUsage
}

// ClusterHandler is the optional server extension behind OpNodeStat and
// OpUsage. A cluster manager accepts heartbeats and serves fleet-wide
// usage; a storage node typically refuses heartbeats and serves its own
// registry's usage. Implementations must be safe for concurrent use.
type ClusterHandler interface {
	// NodeStat ingests one heartbeat.
	NodeStat(stat NodeStat) error
	// Usage returns per-tenant usage: the named tenant's (one entry, or
	// none when unknown), or every tenant's when tenant is "".
	Usage(tenant string) ([]TenantUsage, error)
}

// SetClusterHandler enables the cluster ops: OpNodeStat heartbeats and
// OpUsage queries are answered by h. Without a handler (the default)
// both ops are refused with StatusError. Call before Listen.
func (s *Server) SetClusterHandler(h ClusterHandler) {
	s.mu.Lock()
	s.cluster = h
	s.mu.Unlock()
}

func (s *Server) clusterHandler() ClusterHandler {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cluster
}

// serveNodeStat handles one heartbeat frame.
func (s *Server) serveNodeStat(conn net.Conn, key string, payload []byte) error {
	h := s.clusterHandler()
	if h == nil {
		return writeResponse(conn, StatusError, []byte("transport: node does not accept heartbeats"))
	}
	stat, err := DecodeNodeStat(key, payload)
	if err != nil {
		return writeResponse(conn, StatusError, []byte(err.Error()))
	}
	if herr := h.NodeStat(stat); herr != nil {
		return writeResponse(conn, storeStatus(herr), []byte(herr.Error()))
	}
	return writeResponse(conn, StatusOK, nil)
}

// serveUsage handles one usage query; the frame key names the tenant
// ("" = all tenants).
func (s *Server) serveUsage(conn net.Conn, tenant string, payload []byte) error {
	h := s.clusterHandler()
	if h == nil {
		return writeResponse(conn, StatusError, []byte("transport: node does not serve usage"))
	}
	if len(payload) != 0 {
		return writeResponse(conn, StatusError, []byte("transport: usage query carries a payload"))
	}
	usages, err := h.Usage(tenant)
	if err != nil {
		return writeResponse(conn, storeStatus(err), []byte(err.Error()))
	}
	resp, err := encodeUsages(usages)
	if err != nil {
		return writeResponse(conn, StatusError, []byte(err.Error()))
	}
	return writeResponse(conn, StatusOK, resp)
}

// NodeStat sends one heartbeat; stat.ID travels as the frame key.
func (c *Client) NodeStat(ctx context.Context, stat NodeStat) error {
	return nodeStatOp(ctx, c, stat)
}

// Usage fetches per-tenant usage from the node: the named tenant's, or
// every tenant's when tenant is "".
func (c *Client) Usage(ctx context.Context, tenant string) ([]TenantUsage, error) {
	return usageOp(ctx, c, tenant)
}

// NodeStat sends one heartbeat over a pooled connection.
func (p *PoolClient) NodeStat(ctx context.Context, stat NodeStat) error {
	return p.withConn(ctx, func(c *pipeConn) error {
		return nodeStatOp(ctx, c, stat)
	})
}

// Usage fetches per-tenant usage over a pooled connection.
func (p *PoolClient) Usage(ctx context.Context, tenant string) ([]TenantUsage, error) {
	var out []TenantUsage
	err := p.withConn(ctx, func(c *pipeConn) error {
		var err error
		out, err = usageOp(ctx, c, tenant)
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func nodeStatOp(ctx context.Context, rt roundTripper, stat NodeStat) error {
	payload, err := EncodeNodeStat(stat)
	if err != nil {
		return err
	}
	status, resp, err := rt.roundTrip(ctx, OpNodeStat, stat.ID, payload)
	if err != nil {
		return err
	}
	if status != StatusOK {
		return remoteError(status, resp)
	}
	return nil
}

func usageOp(ctx context.Context, rt roundTripper, tenant string) ([]TenantUsage, error) {
	status, resp, err := rt.roundTrip(ctx, OpUsage, tenant, nil)
	if err != nil {
		return nil, err
	}
	if status != StatusOK {
		return nil, remoteError(status, resp)
	}
	return decodeUsages(resp)
}

// EncodeNodeStat encodes a heartbeat payload (the node ID travels as the
// frame key, not in the payload).
func EncodeNodeStat(stat NodeStat) ([]byte, error) {
	if len(stat.Addr) > MaxKeyLen {
		return nil, fmt.Errorf("transport: node address too long (%d bytes)", len(stat.Addr))
	}
	for _, v := range []int64{stat.Capacity, stat.Used, stat.Segments, stat.DeadBytes} {
		if v < 0 {
			return nil, fmt.Errorf("transport: negative counter %d in heartbeat", v)
		}
	}
	buf := make([]byte, 0, 1+2+len(stat.Addr)+4*8+4+len(stat.Tenants)*(2+16))
	buf = append(buf, NodeStatVersion)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(stat.Addr)))
	buf = append(buf, stat.Addr...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(stat.Capacity))
	buf = binary.BigEndian.AppendUint64(buf, uint64(stat.Used))
	buf = binary.BigEndian.AppendUint64(buf, uint64(stat.Segments))
	buf = binary.BigEndian.AppendUint64(buf, uint64(stat.DeadBytes))
	return appendUsages(buf, stat.Tenants)
}

// DecodeNodeStat decodes a heartbeat from its frame key (the node ID)
// and payload.
func DecodeNodeStat(id string, payload []byte) (NodeStat, error) {
	if id == "" {
		return NodeStat{}, errors.New("transport: heartbeat without a node id")
	}
	if len(payload) < 1 {
		return NodeStat{}, errors.New("transport: empty heartbeat payload")
	}
	if payload[0] != NodeStatVersion {
		return NodeStat{}, fmt.Errorf("transport: unsupported heartbeat version %d", payload[0])
	}
	rest := payload[1:]
	addr, rest, err := takeKey(rest)
	if err != nil {
		return NodeStat{}, err
	}
	stat := NodeStat{ID: id, Addr: addr}
	for _, dst := range []*int64{&stat.Capacity, &stat.Used, &stat.Segments, &stat.DeadBytes} {
		*dst, rest, err = takeCounter(rest)
		if err != nil {
			return NodeStat{}, err
		}
	}
	stat.Tenants, rest, err = takeUsages(rest)
	if err != nil {
		return NodeStat{}, err
	}
	if len(rest) != 0 {
		return NodeStat{}, fmt.Errorf("transport: %d trailing bytes in heartbeat", len(rest))
	}
	return stat, nil
}

// appendUsages appends count(4) followed by one usage record per entry.
func appendUsages(buf []byte, usages []TenantUsage) ([]byte, error) {
	if len(usages) > MaxBatchEntries {
		return nil, fmt.Errorf("transport: %d usage entries exceed limit %d", len(usages), MaxBatchEntries)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(usages)))
	for _, u := range usages {
		if len(u.Tenant) > MaxKeyLen {
			return nil, fmt.Errorf("transport: tenant id too long (%d bytes)", len(u.Tenant))
		}
		if u.Bytes < 0 || u.Blocks < 0 {
			return nil, fmt.Errorf("transport: negative usage for tenant %q", u.Tenant)
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(u.Tenant)))
		buf = append(buf, u.Tenant...)
		buf = binary.BigEndian.AppendUint64(buf, uint64(u.Bytes))
		buf = binary.BigEndian.AppendUint64(buf, uint64(u.Blocks))
	}
	return buf, nil
}

func encodeUsages(usages []TenantUsage) ([]byte, error) {
	return appendUsages(make([]byte, 0, 4+len(usages)*(2+16)), usages)
}

// takeUsages parses count(4) usage records off rest, returning the
// remainder.
func takeUsages(rest []byte) ([]TenantUsage, []byte, error) {
	count, rest, err := batchHeader(rest)
	if err != nil {
		return nil, nil, err
	}
	usages := make([]TenantUsage, 0, count)
	for n := 0; n < count; n++ {
		var u TenantUsage
		u.Tenant, rest, err = takeKey(rest)
		if err != nil {
			return nil, nil, err
		}
		u.Bytes, rest, err = takeCounter(rest)
		if err != nil {
			return nil, nil, err
		}
		u.Blocks, rest, err = takeCounter(rest)
		if err != nil {
			return nil, nil, err
		}
		usages = append(usages, u)
	}
	return usages, rest, nil
}

func decodeUsages(payload []byte) ([]TenantUsage, error) {
	usages, rest, err := takeUsages(payload)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("transport: %d trailing bytes in usage list", len(rest))
	}
	return usages, nil
}

// takeCounter reads one uint64 counter that must fit int64 — a frame
// carrying a "negative" counter is malformed, not a huge value.
func takeCounter(rest []byte) (int64, []byte, error) {
	if len(rest) < 8 {
		return 0, nil, errors.New("transport: truncated counter")
	}
	v := binary.BigEndian.Uint64(rest)
	if v > math.MaxInt64 {
		return 0, nil, fmt.Errorf("transport: counter %d overflows int64", v)
	}
	return int64(v), rest[8:], nil
}
