package transport

import (
	"bytes"
	"strings"
	"testing"

	"aecodes/internal/tenant"
)

// FuzzReadRequest feeds arbitrary byte streams to the server-side frame
// parser: it must never panic nor allocate beyond the declared limits,
// whatever a malicious client sends.
func FuzzReadRequest(f *testing.F) {
	// Well-formed seed frames.
	var good bytes.Buffer
	if err := writeRequest(&good, OpPut, "key", []byte("payload")); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	var getFrame bytes.Buffer
	if err := writeRequest(&getFrame, OpGet, "k", nil); err != nil {
		f.Fatal(err)
	}
	f.Add(getFrame.Bytes())
	// Hostile seeds: oversized key length, oversized payload length,
	// truncated frames.
	f.Add([]byte{OpGet, 0xFF, 0xFF})
	f.Add([]byte{OpPut, 0x00, 0x01, 'k', 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{OpDel})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, frame []byte) {
		op, key, payload, err := readRequest(bytes.NewReader(frame))
		if err != nil {
			return // malformed input must just error
		}
		if len(key) > MaxKeyLen {
			t.Fatalf("accepted oversized key (%d bytes)", len(key))
		}
		if len(payload) > MaxPayloadLen {
			t.Fatalf("accepted oversized payload (%d bytes)", len(payload))
		}
		// A successfully parsed frame must re-encode to a parseable frame
		// with identical content.
		var re bytes.Buffer
		if err := writeRequest(&re, op, key, payload); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		op2, key2, payload2, err := readRequest(bytes.NewReader(re.Bytes()))
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if op2 != op || key2 != key || !bytes.Equal(payload2, payload) {
			t.Fatal("frame round trip not stable")
		}
	})
}

// FuzzHelloFrame drives the tenant handshake path with arbitrary tenant
// IDs and payloads, framed and parsed exactly as the server would see
// them: the frame parser, the version gate and the tenant ID validator
// must never panic, and nothing invalid may slip through — a hostile
// handshake must not be able to name a tenant that escapes its
// namespace prefix.
func FuzzHelloFrame(f *testing.F) {
	// Well-formed handshakes.
	f.Add([]byte("alice"), []byte{HelloVersion})
	f.Add([]byte(""), []byte{HelloVersion})
	f.Add([]byte("user-42.backup_set"), []byte{HelloVersion})
	// Hostile seeds: wrong version, empty payload, trailing bytes,
	// namespace-escape attempts, oversized IDs.
	f.Add([]byte("alice"), []byte{HelloVersion + 1})
	f.Add([]byte("alice"), []byte{})
	f.Add([]byte("alice"), []byte{HelloVersion, 0xFF})
	f.Add([]byte("alice/../bob"), []byte{HelloVersion})
	f.Add([]byte("!tenant/bob"), []byte{HelloVersion})
	f.Add(bytes.Repeat([]byte("a"), tenant.MaxIDLen+1), []byte{HelloVersion})

	f.Fuzz(func(t *testing.T, id, payload []byte) {
		var frame bytes.Buffer
		if err := writeRequest(&frame, OpHello, string(id), payload); err != nil {
			return // unframeable input (key too long) never reaches a server
		}
		op, key, pl, err := readRequest(bytes.NewReader(frame.Bytes()))
		if err != nil {
			t.Fatalf("self-framed handshake failed to parse: %v", err)
		}
		if op != OpHello || key != string(id) || !bytes.Equal(pl, payload) {
			t.Fatal("handshake frame round trip not stable")
		}
		version, verr := parseHello(pl)
		if verr == nil && version != HelloVersion {
			t.Fatalf("parseHello accepted version %d", version)
		}
		iderr := tenant.ValidateID(key)
		if iderr != nil {
			return // refused before any resolver sees it
		}
		// An accepted ID must be namespace-safe: its prefixed form maps
		// back to exactly this tenant.
		if key == "" {
			return
		}
		if strings.ContainsAny(key, "/!") || len(key) > tenant.MaxIDLen {
			t.Fatalf("ValidateID accepted a namespace-unsafe id %q", key)
		}
	})
}

// FuzzReadResponse does the same for the client-side parser.
func FuzzReadResponse(f *testing.F) {
	var good bytes.Buffer
	if err := writeResponse(&good, StatusOK, []byte("block")); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add([]byte{StatusError, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{StatusNotFound})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, frame []byte) {
		status, payload, err := readResponse(bytes.NewReader(frame))
		if err != nil {
			return
		}
		if len(payload) > MaxPayloadLen {
			t.Fatalf("accepted oversized payload (%d bytes)", len(payload))
		}
		var re bytes.Buffer
		if err := writeResponse(&re, status, payload); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		status2, payload2, err := readResponse(bytes.NewReader(re.Bytes()))
		if err != nil || status2 != status || !bytes.Equal(payload2, payload) {
			t.Fatal("response round trip not stable")
		}
	})
}
