//go:build linux

package segstore

import (
	"os"
	"syscall"
	"unsafe"
)

// writevCopies reports whether writevAt stages payload bytes through a
// user-space buffer. On Linux it gathers straight from the caller's
// slices with pwritev(2), so the batch path copies zero payload bytes.
const writevCopies = false

// iovMax bounds the iovec count of one pwritev call (POSIX guarantees at
// least 16; Linux's sysconf(_SC_IOV_MAX) is 1024). Larger batches are
// written in windows of this many segments.
const iovMax = 1024

// writevAt writes the segments of vecs contiguously at offset off with
// pwritev(2): one syscall per iovMax window, no user-space assembly of
// the record. Partial writes advance and continue; the caller sees
// either full success or an error after which it must treat the range
// at off as a torn tail.
func writevAt(f *os.File, vecs [][]byte, off int64) error {
	sc, err := f.SyscallConn()
	if err != nil {
		return err
	}
	// Drop empty segments up front: a zero-length iovec is legal but
	// wastes a slot in the window.
	live := vecs[:0]
	for _, v := range vecs {
		if len(v) > 0 {
			live = append(live, v)
		}
	}
	iov := make([]syscall.Iovec, 0, min(len(live), iovMax))
	var werr error
	ctrlErr := sc.Write(func(fd uintptr) bool {
		for len(live) > 0 {
			iov = iov[:0]
			for _, v := range live {
				if len(iov) == iovMax {
					break
				}
				iov = append(iov, syscall.Iovec{Base: &v[0], Len: uint64(len(v))})
			}
			// pos_l carries the full offset on 64-bit (the kernel's
			// high-half shift discards pos_h there); on 32-bit the pair
			// splits the offset. This matches x/sys/unix.Pwritev.
			wrote, _, errno := syscall.Syscall6(
				syscall.SYS_PWRITEV, fd,
				uintptr(unsafe.Pointer(&iov[0])), uintptr(len(iov)),
				uintptr(off), uintptr(uint64(off)>>32), 0)
			if errno == syscall.EINTR {
				continue
			}
			if errno == syscall.EAGAIN {
				return false // wait for writability, then retry
			}
			if errno != 0 {
				werr = errno
				return true
			}
			off += int64(wrote)
			n := int(wrote)
			for n > 0 {
				if n >= len(live[0]) {
					n -= len(live[0])
					live = live[1:]
				} else {
					live[0] = live[0][n:]
					n = 0
				}
			}
		}
		return true
	})
	if ctrlErr != nil {
		return ctrlErr
	}
	return werr
}
