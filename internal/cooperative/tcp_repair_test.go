package cooperative_test

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"aecodes/internal/cooperative"
	"aecodes/internal/lattice"
	"aecodes/internal/transport"
)

// killableProxy forwards TCP connections to a backend and can sever them
// on demand — the test's handle on "a transient network blip at exactly
// the wrong moment".
type killableProxy struct {
	ln      net.Listener
	backend string

	mu    sync.Mutex
	pairs []net.Conn // client-side conns, oldest first
}

func startProxy(t *testing.T, backend string) *killableProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &killableProxy{ln: ln, backend: backend}
	go p.acceptLoop()
	t.Cleanup(func() { ln.Close() })
	return p
}

func (p *killableProxy) Addr() string { return p.ln.Addr().String() }

func (p *killableProxy) acceptLoop() {
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		up, err := net.Dial("tcp", p.backend)
		if err != nil {
			client.Close()
			continue
		}
		p.mu.Lock()
		p.pairs = append(p.pairs, client)
		p.mu.Unlock()
		go func() { io.Copy(up, client); up.Close() }()
		go func() { io.Copy(client, up); client.Close() }()
	}
}

// KillOldest severs the oldest proxied connection still on record.
func (p *killableProxy) KillOldest() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.pairs) == 0 {
		return
	}
	p.pairs[0].Close()
	p.pairs = p.pairs[1:]
}

// poisonOnGetMany is a BatchNodeStore decorator that severs a proxied
// connection immediately before forwarding its killOn'th GetMany — for
// round-based repair over this node, that is mid-prefetch.
type poisonOnGetMany struct {
	cooperative.BatchNodeStore
	kill   func()
	killOn int

	mu    sync.Mutex
	calls int
}

func (d *poisonOnGetMany) GetMany(ctx context.Context, keys []string) ([][]byte, error) {
	d.mu.Lock()
	d.calls++
	if d.calls == d.killOn {
		d.kill()
	}
	d.mu.Unlock()
	return d.BatchNodeStore.GetMany(ctx, keys)
}

// TestRepairSurvivesMidPrefetchConnPoison is the end-to-end degraded-mode
// test over real sockets: a pool connection to one storage node is
// poisoned in the middle of a repair round's prefetch, the round
// completes on the surviving connection (the pool evicts the corpse and
// retries the in-flight batch), the background redial restores full pool
// capacity, and every data block decodes intact afterwards.
func TestRepairSurvivesMidPrefetchConnPoison(t *testing.T) {
	const (
		nodesCount = 3
		n          = 40
		blockSize  = 64
	)
	var nodes []cooperative.NodeStore
	var pools []*transport.PoolClient
	var proxy *killableProxy
	for i := 0; i < nodesCount; i++ {
		srv, err := transport.NewServer(transport.NewMemStore())
		if err != nil {
			t.Fatal(err)
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		dialAddr := addr
		if i == 0 {
			proxy = startProxy(t, addr)
			dialAddr = proxy.Addr()
		}
		pool, err := transport.DialPoolOptions(dialAddr, 2, transport.PoolOptions{
			RedialBackoff: 2 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { pool.Close() })
		pools = append(pools, pool)
		if i == 0 {
			// The node whose connection dies mid-prefetch: the second
			// GetMany a repair round sends it is the engine's round
			// prefetch (the first is the Missing enumeration).
			nodes = append(nodes, &poisonOnGetMany{BatchNodeStore: pool, kill: proxy.KillOldest, killOn: 2})
		} else {
			nodes = append(nodes, pool)
		}
	}

	b, err := cooperative.NewBroker("tcpuser", lattice.Params{Alpha: 3, S: 2, P: 5}, blockSize, nodes)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(12))
	originals := make([][]byte, n+1)
	for i := 1; i <= n; i++ {
		data := make([]byte, blockSize)
		rng.Read(data)
		originals[i] = data
		if _, err := b.Backup(ctx, data); err != nil {
			t.Fatalf("Backup(%d): %v", i, err)
		}
	}
	// Lose a third of the user's data so the repair round has real work.
	for i := 1; i <= n; i++ {
		if rng.Float64() < 0.33 {
			b.DropLocal(i)
		}
	}

	stats, err := b.RepairLattice(ctx)
	if err != nil {
		t.Fatalf("repair with mid-prefetch poison: %v", err)
	}
	if len(stats.UnrepairedData) != 0 {
		t.Fatalf("repair left %d data blocks missing despite surviving conns", len(stats.UnrepairedData))
	}
	for i := 1; i <= n; i++ {
		got, err := b.Read(ctx, i)
		if err != nil {
			t.Fatalf("Read(%d) after poisoned-round repair: %v", i, err)
		}
		if !bytes.Equal(got, originals[i]) {
			t.Fatalf("block %d corrupted", i)
		}
	}

	// The poisoned connection must have been evicted and redialed: the
	// pool returns to full capacity, not permanent degradation.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && pools[0].Live() < 2 {
		time.Sleep(2 * time.Millisecond)
	}
	if live := pools[0].Live(); live != 2 {
		t.Fatalf("pool to poisoned node has %d live conns, want 2 (redial failed)", live)
	}
	// And the healed pool serves traffic: one more full round trip.
	if err := pools[0].Put(ctx, "healed", []byte("ok")); err != nil {
		t.Fatalf("Put through healed pool: %v", err)
	}
}
