// Package analyzetest is the harness for aelint's analyzers, in the
// shape of golang.org/x/tools/go/analysis/analysistest: a testdata
// package annotates the lines it expects to be flagged with
//
//	b.m[key] = data // want `stores a caller slice`
//
// and Run checks the analyzer's diagnostics against those expectations
// both ways — every want must be matched by a diagnostic on its line
// and every diagnostic must be claimed by a want. The payload is one or
// more Go string literals, each a regular expression matched against
// the diagnostic message.
package analyzetest

import (
	"fmt"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"aecodes/internal/analyze"
)

// Run loads the package in dir and applies analyzers through the full
// runner (suppression directives included), comparing diagnostics with
// the package's want comments.
func Run(t *testing.T, dir string, analyzers ...*analyze.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	pkg, err := analyze.LoadDir(fset, dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := analyze.Run(fset, []*analyze.Package{pkg}, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", dir, err)
	}
	wants, err := collectWants(fset, pkg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re.String())
		}
	}
}

// want is one expectation: a diagnostic on (file, line) whose message
// matches re.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

func collectWants(fset *token.FileSet, pkg *analyze.Package) ([]*want, error) {
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Slash)
				res, err := parseWantPatterns(strings.TrimSpace(text))
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %w", pos.Filename, pos.Line, err)
				}
				for _, re := range res {
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants, nil
}

// parseWantPatterns splits a want payload into its quoted regexps.
func parseWantPatterns(text string) ([]*regexp.Regexp, error) {
	var res []*regexp.Regexp
	for text != "" {
		quoted, err := strconv.QuotedPrefix(text)
		if err != nil {
			return nil, fmt.Errorf("malformed want payload %q: expected quoted regexp", text)
		}
		pattern, err := strconv.Unquote(quoted)
		if err != nil {
			return nil, fmt.Errorf("malformed want pattern %q: %w", quoted, err)
		}
		re, err := regexp.Compile(pattern)
		if err != nil {
			return nil, fmt.Errorf("bad want regexp %q: %w", pattern, err)
		}
		res = append(res, re)
		text = strings.TrimSpace(text[len(quoted):])
	}
	if len(res) == 0 {
		return nil, fmt.Errorf("want comment with no patterns")
	}
	return res, nil
}

// claim marks the first unmatched want on the diagnostic's line whose
// regexp matches, and reports whether one was found.
func claim(wants []*want, d analyze.Diagnostic) bool {
	for _, w := range wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}
