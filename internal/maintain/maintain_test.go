package maintain

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"aecodes/internal/entangle"
	"aecodes/internal/segstore"
	"aecodes/internal/store"
)

// fakeTime drives a Bucket without wall-clock sleeps: sleeping advances
// the virtual clock and accumulates the slept total.
type fakeTime struct {
	t     time.Time
	slept time.Duration
}

func (f *fakeTime) install(b *Bucket) {
	f.t = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	b.now = func() time.Time { return f.t }
	b.sleep = func(ctx context.Context, d time.Duration) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		f.t = f.t.Add(d)
		f.slept += d
		return nil
	}
	b.mu.Lock()
	b.last = f.t
	b.mu.Unlock()
}

func TestBucketConvergesOnByteRate(t *testing.T) {
	b := NewBucket(1000, 0)
	clk := &fakeTime{}
	clk.install(b)

	// Ten 500-byte charges at 1000 B/s: the first lands on an empty but
	// debt-free bucket; each later one must wait for the prior debt, so
	// the run takes ~4.5 virtual seconds.
	for i := 0; i < 10; i++ {
		if err := b.Acquire(context.Background(), 1, 500); err != nil {
			t.Fatal(err)
		}
	}
	if clk.slept < 4*time.Second || clk.slept > 5*time.Second {
		t.Fatalf("10x500B at 1000B/s slept %v, want ~4.5s", clk.slept)
	}
}

func TestBucketOpsRate(t *testing.T) {
	b := NewBucket(0, 10)
	clk := &fakeTime{}
	clk.install(b)
	for i := 0; i < 20; i++ {
		if err := b.Acquire(context.Background(), 5, 1<<30); err != nil {
			t.Fatal(err)
		}
	}
	// 20x5 ops at 10 ops/s ≈ 9.5s; the huge byte charge is free because
	// the byte dimension is disabled.
	if clk.slept < 9*time.Second || clk.slept > 10*time.Second {
		t.Fatalf("100 ops at 10/s slept %v, want ~9.5s", clk.slept)
	}
}

func TestBucketUnlimitedAdmitsImmediately(t *testing.T) {
	b := NewBucket(0, 0)
	clk := &fakeTime{}
	clk.install(b)
	for i := 0; i < 100; i++ {
		if err := b.Acquire(context.Background(), 1000, 1<<40); err != nil {
			t.Fatal(err)
		}
	}
	if clk.slept != 0 {
		t.Fatalf("unlimited bucket slept %v", clk.slept)
	}
}

func TestBucketBurstCappedAtOneSecond(t *testing.T) {
	b := NewBucket(1000, 0)
	clk := &fakeTime{}
	clk.install(b)
	// A long idle stretch must not bank more than 1s of tokens: a 3000-byte
	// charge after 10 idle seconds leaves 2000 bytes of debt (~2s wait),
	// not zero.
	clk.t = clk.t.Add(10 * time.Second)
	if err := b.Acquire(context.Background(), 1, 3000); err != nil {
		t.Fatal(err)
	}
	if err := b.Acquire(context.Background(), 1, 0); err != nil {
		t.Fatal(err)
	}
	if clk.slept < 1900*time.Millisecond || clk.slept > 2100*time.Millisecond {
		t.Fatalf("slept %v repaying post-burst debt, want ~2s", clk.slept)
	}
}

func TestBucketPauseBlocksUntilResume(t *testing.T) {
	b := NewBucket(0, 0)
	clk := &fakeTime{}
	clk.install(b)
	b.Pause()
	polls := 0
	b.sleep = func(ctx context.Context, d time.Duration) error {
		polls++
		if polls == 3 {
			b.Resume()
		}
		clk.t = clk.t.Add(d)
		return nil
	}
	if err := b.Acquire(context.Background(), 1, 1); err != nil {
		t.Fatal(err)
	}
	if polls != 3 {
		t.Fatalf("paused Acquire polled %d times before Resume admitted it, want 3", polls)
	}
}

func TestBucketHonorsContext(t *testing.T) {
	b := NewBucket(0, 0)
	b.Pause()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := b.Acquire(ctx, 1, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("Acquire on cancelled ctx = %v, want Canceled", err)
	}
}

// scriptTask runs a fixed sequence of Progress results, then stays idle.
type scriptTask struct {
	name   string
	script []Progress
	errs   []error
	runs   atomic.Int32
}

func (t *scriptTask) Name() string { return t.name }

func (t *scriptTask) RunOnce(ctx context.Context) (Progress, error) {
	i := int(t.runs.Add(1)) - 1
	var err error
	if i < len(t.errs) {
		err = t.errs[i]
	}
	if i < len(t.script) {
		return t.script[i], err
	}
	return Progress{Idle: true}, err
}

func TestSchedulerRunsTasksAndAccounts(t *testing.T) {
	task := &scriptTask{name: "demo", script: []Progress{
		{Ops: 3, Bytes: 300, Found: 1, Repaired: 1},
		{Ops: 2, Bytes: 200},
	}}
	var events atomic.Int32
	s := NewScheduler(Options{
		IdleDelay: time.Millisecond,
		OnEvent:   func(string, ...any) { events.Add(1) },
	}, task)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); s.Run(ctx) }()
	deadline := time.After(5 * time.Second)
	for task.runs.Load() < 3 {
		select {
		case <-deadline:
			t.Fatal("scheduler never drained the script")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	<-done
	st := s.Stats()["demo"]
	if st.Ops < 5 || st.Bytes < 500 || st.Found != 1 || st.Repaired != 1 {
		t.Fatalf("Stats = %+v, want the scripted totals", st)
	}
	if events.Load() < 1 {
		t.Fatal("the found/repaired step emitted no event")
	}
}

func TestSchedulerSurvivesTaskErrors(t *testing.T) {
	task := &scriptTask{name: "flaky", errs: []error{errors.New("boom"), errors.New("boom")}}
	var events atomic.Int32
	s := NewScheduler(Options{
		IdleDelay: time.Millisecond,
		OnEvent:   func(string, ...any) { events.Add(1) },
	}, task)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); s.Run(ctx) }()
	deadline := time.After(5 * time.Second)
	for task.runs.Load() < 4 {
		select {
		case <-deadline:
			t.Fatal("scheduler stopped after task errors")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	<-done
	if st := s.Stats()["flaky"]; st.Errors != 2 {
		t.Fatalf("Errors = %d, want 2", st.Errors)
	}
	if events.Load() < 2 {
		t.Fatal("task errors were not reported")
	}
}

func TestSchedulerPausesUnderPressure(t *testing.T) {
	var pressured atomic.Bool
	pressured.Store(true)
	task := &scriptTask{name: "work"}
	b := NewBucket(1000, 0)
	s := NewScheduler(Options{
		Limit:         b,
		Pressure:      pressured.Load,
		IdleDelay:     time.Millisecond,
		PressureDelay: time.Millisecond,
	}, task)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); s.Run(ctx) }()

	time.Sleep(20 * time.Millisecond)
	if task.runs.Load() != 0 {
		t.Fatal("task ran under foreground pressure")
	}
	b.mu.Lock()
	paused := b.paused
	b.mu.Unlock()
	if !paused {
		t.Fatal("pressure did not pause the shared bucket")
	}

	pressured.Store(false)
	deadline := time.After(5 * time.Second)
	for task.runs.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("task never ran after pressure cleared")
		case <-time.After(time.Millisecond):
		}
	}
	b.mu.Lock()
	paused = b.paused
	b.mu.Unlock()
	if paused {
		t.Fatal("bucket still paused after pressure cleared")
	}
	cancel()
	<-done
}

// fakeScrubber scripts ScrubStep results and records cursors.
type fakeScrubber struct {
	results []segstore.ScrubResult
	cursors []string
}

func (f *fakeScrubber) ScrubStep(after string, maxBytes int64) segstore.ScrubResult {
	f.cursors = append(f.cursors, after)
	if len(f.results) == 0 {
		return segstore.ScrubResult{}
	}
	res := f.results[0]
	f.results = f.results[1:]
	return res
}

func TestScrubTaskAdvancesCursorAndCharges(t *testing.T) {
	fs := &fakeScrubber{results: []segstore.ScrubResult{
		{Next: "k10", Scanned: 5, Bytes: 500, Corrupt: []string{"k03"}},
		{Next: "", Scanned: 2, Bytes: 200},
	}}
	b := NewBucket(1000, 0)
	clk := &fakeTime{}
	clk.install(b)
	task := &ScrubTask{Store: fs, Limit: b}

	p1, err := task.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if p1.Found != 1 || p1.Ops != 5 || p1.Bytes != 500 || p1.Idle {
		t.Fatalf("step 1 progress = %+v", p1)
	}
	p2, err := task.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if p2.Idle {
		t.Fatal("a scanning step reported idle")
	}
	if want := []string{"", "k10"}; fs.cursors[0] != want[0] || fs.cursors[1] != want[1] {
		t.Fatalf("cursors = %v, want %v", fs.cursors, want)
	}
	if clk.slept == 0 {
		t.Fatal("700 scanned bytes at 1000B/s charged nothing")
	}
	// An empty store is an idle step.
	p3, err := task.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !p3.Idle {
		t.Fatalf("empty step progress = %+v, want idle", p3)
	}
}

// fakeTarget scripts Health and records Repair invocations.
type fakeTarget struct {
	health  entangle.Health
	calls   []entangle.Options
	results []entangle.Stats
}

func (f *fakeTarget) Health(ctx context.Context) (entangle.Health, error) {
	return f.health, nil
}

func (f *fakeTarget) Repair(ctx context.Context, opts entangle.Options) (entangle.Stats, error) {
	f.calls = append(f.calls, opts)
	if len(f.results) == 0 {
		return entangle.Stats{}, nil
	}
	res := f.results[0]
	f.results = f.results[1:]
	return res, nil
}

func damagedHealth() entangle.Health {
	return entangle.Health{
		Blocks:       100,
		Missing:      store.Missing{Data: []int{10, 20}},
		IntactTuples: map[int]int{10: 3, 20: 1},
		Score:        1.0/4 + 1.0/2,
	}
}

func TestHealTaskTargetsFragileFirst(t *testing.T) {
	ft := &fakeTarget{
		health:  damagedHealth(),
		results: []entangle.Stats{{DataRepaired: 2, BytesRead: 4096}},
	}
	task := &HealTask{Open: func(ctx context.Context) (HealTarget, error) { return ft, nil }}
	prog, err := task.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ft.calls) != 1 {
		t.Fatalf("Repair called %d times, want 1", len(ft.calls))
	}
	opts := ft.calls[0]
	if opts.Scope != entangle.ScopeTuple {
		t.Errorf("Scope = %v, want ScopeTuple", opts.Scope)
	}
	if opts.Priority != entangle.PriorityUrgent {
		t.Errorf("Priority = %v, want Urgent (block 20 has one intact tuple)", opts.Priority)
	}
	if len(opts.Targets) != 2 || opts.Targets[0] != store.DataRef(20) || opts.Targets[1] != store.DataRef(10) {
		t.Errorf("Targets = %v, want fragile-first [d20 d10]", opts.Targets)
	}
	if prog.Repaired != 2 || prog.Found != 2 || prog.Bytes != 4096 || prog.Idle {
		t.Errorf("progress = %+v", prog)
	}
}

func TestHealTaskFallsBackToLatticeScope(t *testing.T) {
	ft := &fakeTarget{
		health: damagedHealth(),
		// Scoped repair completes nothing; the fallback round pass does.
		results: []entangle.Stats{{}, {DataRepaired: 2}},
	}
	task := &HealTask{Open: func(ctx context.Context) (HealTarget, error) { return ft, nil }}
	prog, err := task.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ft.calls) != 2 {
		t.Fatalf("Repair called %d times, want scoped + fallback", len(ft.calls))
	}
	if ft.calls[1].Scope != entangle.ScopeLattice {
		t.Errorf("fallback Scope = %v, want ScopeLattice", ft.calls[1].Scope)
	}
	if ft.calls[1].MaxRounds <= 0 {
		t.Errorf("fallback MaxRounds = %d, want bounded", ft.calls[1].MaxRounds)
	}
	if prog.Repaired != 2 || prog.Idle {
		t.Errorf("progress = %+v", prog)
	}
}

func TestHealTaskIdleWhenUnrecoverable(t *testing.T) {
	ft := &fakeTarget{health: damagedHealth()} // every Repair returns zero
	task := &HealTask{Open: func(ctx context.Context) (HealTarget, error) { return ft, nil }}
	prog, err := task.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !prog.Idle {
		t.Fatal("no-progress heal must back off idle instead of spinning")
	}
}

func TestHealTaskIdleBeforeArchiveExists(t *testing.T) {
	task := &HealTask{Open: func(ctx context.Context) (HealTarget, error) {
		return nil, store.ErrNotFound
	}}
	prog, err := task.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !prog.Idle {
		t.Fatal("missing lattice shape must be an idle step, not an error")
	}
}

func TestHealTaskHealthyIsIdle(t *testing.T) {
	ft := &fakeTarget{health: entangle.Health{Blocks: 10}}
	task := &HealTask{Open: func(ctx context.Context) (HealTarget, error) { return ft, nil }}
	prog, err := task.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !prog.Idle || len(ft.calls) != 0 {
		t.Fatalf("healthy lattice: progress=%+v, %d repair calls", prog, len(ft.calls))
	}
}

// fakeDrainer scripts DrainStep.
type fakeDrainer struct {
	moves []int
	err   error
	maxes []int
}

func (f *fakeDrainer) DrainStep(max int) (int, error) {
	f.maxes = append(f.maxes, max)
	if len(f.moves) == 0 {
		return 0, f.err
	}
	n := f.moves[0]
	f.moves = f.moves[1:]
	return n, f.err
}

func TestDrainTaskBatchesAndIdles(t *testing.T) {
	fd := &fakeDrainer{moves: []int{16, 3}}
	task := &DrainTask{Mgr: fd}
	p1, err := task.RunOnce(context.Background())
	if err != nil || p1.Repaired != 16 || p1.Idle {
		t.Fatalf("step 1 = %+v, %v", p1, err)
	}
	p2, err := task.RunOnce(context.Background())
	if err != nil || p2.Repaired != 3 || p2.Idle {
		t.Fatalf("step 2 = %+v, %v", p2, err)
	}
	p3, err := task.RunOnce(context.Background())
	if err != nil || !p3.Idle {
		t.Fatalf("drained step = %+v, %v, want idle", p3, err)
	}
	if fd.maxes[0] != 16 {
		t.Fatalf("default batch = %d, want 16", fd.maxes[0])
	}
}

func TestDrainTaskReportsManagerError(t *testing.T) {
	fd := &fakeDrainer{err: errors.New("no nodes")}
	task := &DrainTask{Mgr: fd}
	if _, err := task.RunOnce(context.Background()); err == nil {
		t.Fatal("manager error swallowed")
	}
}
