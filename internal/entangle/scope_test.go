package entangle

import (
	"bytes"
	"context"
	"testing"

	"aecodes/internal/lattice"
	"aecodes/internal/store"
)

// loseTuple breaks one pp-tuple of data block i by removing the given
// real edge of it.
func loseEdge(t *testing.T, st *MemoryStore, e lattice.Edge) {
	t.Helper()
	if e.IsVirtual() {
		t.Fatalf("test setup: edge %v is virtual, cannot lose it", e)
	}
	st.LoseParity(e)
}

func TestScopeBlockRepairsOnlyTargets(t *testing.T) {
	params := lattice.Params{Alpha: 3, S: 2, P: 5}
	st, originals := buildSystem(t, params, 120, 64, 11)
	r := mustRepairer(t, params)

	st.LoseData(60)
	st.LoseData(61)
	stats, err := r.Repair(bg, st, Options{Scope: ScopeBlock, Targets: []store.Ref{store.DataRef(60)}})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if stats.DataRepaired != 1 || stats.ParityRepaired != 0 {
		t.Fatalf("stats = %d data, %d parity repaired; want exactly the target", stats.DataRepaired, stats.ParityRepaired)
	}
	got, ok := st.Data(60)
	if !ok || !bytes.Equal(got, originals[60]) {
		t.Errorf("target block 60 not restored correctly")
	}
	if _, ok := st.Data(61); ok {
		t.Errorf("block 61 was repaired, but scoped repair must touch only its targets")
	}
	// A single-tuple repair of an interior block reads exactly the two
	// parities of one pp-tuple — the minimal-bandwidth property the
	// maintenance scheduler relies on.
	if want := int64(2 * 64); stats.BytesRead != want {
		t.Errorf("BytesRead = %d, want %d (two tuple parities)", stats.BytesRead, want)
	}
}

func TestScopeBlockDoesNotCascade(t *testing.T) {
	params := lattice.Params{Alpha: 3, S: 2, P: 5}
	st, _ := buildSystem(t, params, 120, 64, 12)
	r := mustRepairer(t, params)
	lat := r.Lattice()

	// Break every pp-tuple of block 60 by removing one parity from each.
	tuples, err := lat.Tuples(60)
	if err != nil {
		t.Fatal(err)
	}
	st.LoseData(60)
	for _, tup := range tuples {
		loseEdge(t, st, tup.In)
	}
	stats, err := r.Repair(bg, st, Options{Scope: ScopeBlock, Targets: []store.Ref{store.DataRef(60)}})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if stats.DataRepaired != 0 || len(stats.UnrepairedData) != 1 || stats.UnrepairedData[0] != 60 {
		t.Fatalf("ScopeBlock with no intact tuple: stats = %+v, want block 60 unrepaired", stats)
	}
}

func TestScopeTupleHealsCompanionParity(t *testing.T) {
	params := lattice.Params{Alpha: 3, S: 2, P: 5}
	st, originals := buildSystem(t, params, 120, 64, 13)
	r := mustRepairer(t, params)
	lat := r.Lattice()

	// Same damage as above: no pp-tuple of 60 is complete. ScopeTuple may
	// rebuild one missing companion parity from its own dp-tuple, which
	// unlocks the target.
	tuples, err := lat.Tuples(60)
	if err != nil {
		t.Fatal(err)
	}
	st.LoseData(60)
	for _, tup := range tuples {
		loseEdge(t, st, tup.In)
	}
	stats, err := r.Repair(bg, st, Options{Scope: ScopeTuple, Targets: []store.Ref{store.DataRef(60)}})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if stats.DataRepaired != 1 {
		t.Fatalf("stats.DataRepaired = %d, want 1 (companion cascade should unlock the target)", stats.DataRepaired)
	}
	if stats.ParityRepaired < 1 {
		t.Errorf("stats.ParityRepaired = %d, want >= 1 (the healed companion commits too)", stats.ParityRepaired)
	}
	got, ok := st.Data(60)
	if !ok || !bytes.Equal(got, originals[60]) {
		t.Errorf("target block 60 not restored correctly through the cascade")
	}
}

func TestScopedRepairSkipsPresentTargets(t *testing.T) {
	params := lattice.Params{Alpha: 3, S: 2, P: 5}
	st, _ := buildSystem(t, params, 120, 64, 14)
	r := mustRepairer(t, params)

	stats, err := r.Repair(bg, st, Options{Scope: ScopeBlock, Targets: []store.Ref{store.DataRef(7), store.DataRef(8)}})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if stats.DataRepaired != 0 || stats.Rounds != 0 {
		t.Errorf("present targets repaired: %+v", stats)
	}
}

// acquireLog records every Limiter charge.
type acquireLog struct {
	ops   int
	bytes int64
	calls int
	fail  error
}

func (l *acquireLog) Acquire(ctx context.Context, ops int, bytes int64) error {
	if l.fail != nil {
		return l.fail
	}
	l.calls++
	l.ops += ops
	l.bytes += bytes
	return nil
}

func TestScopedRepairChargesLimiter(t *testing.T) {
	params := lattice.Params{Alpha: 3, S: 2, P: 5}
	st, _ := buildSystem(t, params, 120, 64, 15)
	r := mustRepairer(t, params)

	st.LoseData(60)
	lim := &acquireLog{}
	stats, err := r.Repair(bg, st, Options{Scope: ScopeBlock, Targets: []store.Ref{store.DataRef(60)}, RateLimit: lim})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	// Every metered read and the final commit must charge the bucket:
	// reads (BytesRead) plus one repaired block written back.
	want := stats.BytesRead + 64
	if lim.bytes != want {
		t.Errorf("limiter charged %d bytes, want %d (reads %d + one committed block)", lim.bytes, want, stats.BytesRead)
	}
	if lim.calls < 2 {
		t.Errorf("limiter charged %d times, want at least a read and a commit charge", lim.calls)
	}
}

func TestRoundRepairMetersAndCharges(t *testing.T) {
	params := lattice.Params{Alpha: 3, S: 2, P: 5}
	st, _ := buildSystem(t, params, 120, 64, 16)
	r := mustRepairer(t, params)

	st.LoseData(30)
	st.LoseData(90)
	lim := &acquireLog{}
	stats, err := r.Repair(bg, st, Options{RateLimit: lim})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if stats.DataRepaired != 2 {
		t.Fatalf("DataRepaired = %d, want 2", stats.DataRepaired)
	}
	if stats.BytesRead <= 0 {
		t.Errorf("round repair did not meter BytesRead")
	}
	if lim.bytes < stats.BytesRead {
		t.Errorf("limiter charged %d bytes < %d metered reads; commit must add more", lim.bytes, stats.BytesRead)
	}
}

func TestHealthScoresFragility(t *testing.T) {
	params := lattice.Params{Alpha: 3, S: 2, P: 5}
	st, _ := buildSystem(t, params, 120, 64, 17)
	r := mustRepairer(t, params)
	lat := r.Lattice()

	h, err := r.Health(bg, st, 120)
	if err != nil {
		t.Fatalf("Health: %v", err)
	}
	if !h.Healthy() || h.Score != 0 {
		t.Fatalf("undamaged lattice: Healthy=%v Score=%v", h.Healthy(), h.Score)
	}

	// Block 60: plain loss, all α tuples intact. Block 90: loss with every
	// tuple broken — one failure from permanent.
	st.LoseData(60)
	st.LoseData(90)
	tuples, err := lat.Tuples(90)
	if err != nil {
		t.Fatal(err)
	}
	for _, tup := range tuples {
		loseEdge(t, st, tup.In)
	}
	h, err = r.Health(bg, st, 120)
	if err != nil {
		t.Fatalf("Health: %v", err)
	}
	if h.Healthy() {
		t.Fatal("damaged lattice reported healthy")
	}
	if got := h.IntactTuples[60]; got != params.Alpha {
		t.Errorf("IntactTuples[60] = %d, want %d", got, params.Alpha)
	}
	if got := h.IntactTuples[90]; got != 0 {
		t.Errorf("IntactTuples[90] = %d, want 0", got)
	}
	order := h.FragileFirst()
	if len(order) != 2 || order[0] != 90 || order[1] != 60 {
		t.Errorf("FragileFirst() = %v, want [90 60] (fewest intact tuples first)", order)
	}
	// Scoring: 90 contributes 1/(1+0)=1, 60 contributes 1/(1+α), each
	// missing parity at most 0.5 — so the score must exceed 1 but stay
	// bounded by the parts.
	minScore := 1.0 + 1.0/float64(1+params.Alpha)
	maxScore := minScore + 0.5*float64(len(h.Missing.Parities))
	if h.Score < minScore || h.Score > maxScore {
		t.Errorf("Score = %v, want within [%v, %v]", h.Score, minScore, maxScore)
	}
}
