// Command benchguard compares an `aebench -json` run against a
// committed baseline and reports throughput regressions. It is the CI
// benchmark guard: shared runners are noisy, so by default it only
// warns (exit 0) and leaves failing the build to a human; -strict turns
// regressions into a non-zero exit for controlled environments.
//
// Usage:
//
//	aebench -exp encode -json > current.json
//	benchguard -baseline BENCH_2026-07-28.json -current current.json
//	benchguard -baseline BENCH_*.json -current current.json -tolerance 0.5 -github
//
// Measurements are matched by (experiment, name); when either file
// carries several samples for one key (e.g. repeated repair runs) the
// best MB/s wins, which filters scheduler noise in the direction that
// avoids false alarms. A measurement is a regression when its current
// MB/s drops below baseline × (1 - tolerance). Entries present only in
// the current run are informational; entries present only in the
// baseline mean the guard is blind to a committed metric (e.g. a renamed
// experiment), so they are annotated and fail a -strict run. -github
// renders findings as GitHub Actions workflow annotations.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"aecodes/internal/benchfmt"
)

// finding is one compared measurement.
type finding struct {
	Key        string
	Baseline   float64
	Current    float64
	Regression bool
}

// bestByKey folds a document into best-MB/s-per-(experiment,name),
// dropping entries with no throughput figure (wall-time-only records).
func bestByKey(doc benchfmt.Document) map[string]float64 {
	best := make(map[string]float64)
	for _, r := range doc.Results {
		if r.MBps <= 0 {
			continue
		}
		key := r.Experiment + "/" + r.Name
		if r.MBps > best[key] {
			best[key] = r.MBps
		}
	}
	return best
}

// compare evaluates current against baseline with the given relative
// tolerance, returning per-key findings sorted by key plus the keys
// present on only one side.
func compare(baseline, current benchfmt.Document, tolerance float64) (findings []finding, onlyBaseline, onlyCurrent []string) {
	base := bestByKey(baseline)
	cur := bestByKey(current)
	for key, b := range base {
		c, ok := cur[key]
		if !ok {
			onlyBaseline = append(onlyBaseline, key)
			continue
		}
		findings = append(findings, finding{
			Key:        key,
			Baseline:   b,
			Current:    c,
			Regression: c < b*(1-tolerance),
		})
	}
	for key := range cur {
		if _, ok := base[key]; !ok {
			onlyCurrent = append(onlyCurrent, key)
		}
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].Key < findings[j].Key })
	sort.Strings(onlyBaseline)
	sort.Strings(onlyCurrent)
	return findings, onlyBaseline, onlyCurrent
}

func readDocument(path string) (benchfmt.Document, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return benchfmt.Document{}, err
	}
	var doc benchfmt.Document
	if err := json.Unmarshal(raw, &doc); err != nil {
		return benchfmt.Document{}, fmt.Errorf("parsing %s: %w", path, err)
	}
	return doc, nil
}

func main() {
	var (
		baselinePath = flag.String("baseline", "", "committed aebench -json baseline")
		currentPath  = flag.String("current", "", "fresh aebench -json run to check")
		tolerance    = flag.Float64("tolerance", 0.5, "allowed relative MB/s drop before a measurement counts as a regression")
		github       = flag.Bool("github", false, "emit GitHub Actions ::warning:: / ::error:: annotations")
		strict       = flag.Bool("strict", false, "exit 1 on regression instead of warning only")
	)
	flag.Parse()
	if *baselinePath == "" || *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -baseline and -current are required")
		os.Exit(2)
	}
	if *tolerance < 0 || *tolerance >= 1 {
		fmt.Fprintln(os.Stderr, "benchguard: -tolerance must be in [0, 1)")
		os.Exit(2)
	}
	baseline, err := readDocument(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	current, err := readDocument(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}

	findings, onlyBaseline, onlyCurrent := compare(baseline, current, *tolerance)
	regressions := 0
	fmt.Printf("benchguard: baseline %s (%s) vs current (%s), tolerance %.0f%%\n",
		*baselinePath, orUnknown(baseline.Timestamp), orUnknown(current.Timestamp), *tolerance*100)
	for _, f := range findings {
		verdict := "ok"
		if f.Regression {
			verdict = "REGRESSION"
			regressions++
		}
		fmt.Printf("  %-24s baseline %9.1f MB/s  current %9.1f MB/s  (%+.1f%%)  %s\n",
			f.Key, f.Baseline, f.Current, (f.Current/f.Baseline-1)*100, verdict)
		if f.Regression && *github {
			// Warn-only runs annotate as warnings; under -strict the job
			// will fail, so the annotation matches at error level.
			level := "warning"
			if *strict {
				level = "error"
			}
			fmt.Printf("::%s title=Benchmark regression::%s dropped to %.1f MB/s (baseline %.1f MB/s, tolerance %.0f%%)\n",
				level, f.Key, f.Current, f.Baseline, *tolerance*100)
		}
	}
	// A baseline metric the current run never measured is a hole in the
	// guard (a renamed experiment would silently go unwatched), so it is
	// annotated like a regression and fails a -strict run.
	for _, key := range onlyBaseline {
		fmt.Printf("  %-24s in baseline only (experiment not run)\n", key)
		if *github {
			fmt.Printf("::warning title=Benchmark coverage::baseline metric %s was not measured by this run — regression guard is blind to it\n", key)
		}
	}
	for _, key := range onlyCurrent {
		fmt.Printf("  %-24s new measurement (no baseline)\n", key)
	}
	if regressions == 0 && len(onlyBaseline) == 0 {
		fmt.Println("benchguard: no regressions")
		return
	}
	fmt.Printf("benchguard: %d regression(s), %d unmeasured baseline metric(s)\n", regressions, len(onlyBaseline))
	if *strict {
		os.Exit(1)
	}
}

func orUnknown(s string) string {
	if s == "" {
		return "unknown"
	}
	return s
}
