// Package tenant makes one storage node shareable by many mutually
// untrusting users, the §IV.A cooperative setting where "the nodes of the
// system belong to many users": it wraps any keyed block store (the
// in-memory transport store, the durable segment store) with per-tenant
// namespaces, byte/block quotas enforced atomically at write time, usage
// accounting rebuilt from the backing store on reopen, and a pluggable
// eviction policy that sheds whole cold tenant lattices when the node
// runs out of room — lattices which entanglement repair can later
// regenerate from the surviving strands.
//
// Namespacing is by key prefix: tenant "alice" writing key "k" lands on
// "!tenant/alice/k" in the backing store. The anonymous tenant — every
// client that never performed the transport handshake — owns the raw,
// unprefixed keyspace, so a node upgraded under live pre-handshake
// clients keeps serving their blocks unchanged. Tenant IDs are validated
// (lowercase alphanumerics plus "._-", no separators) so a hostile ID can
// never escape its prefix.
//
// Quotas are admission control, not reservation: a Put or PutBatch whose
// admitted delta would push the tenant past its byte or block budget is
// refused with store.ErrQuotaExceeded before touching the backing store.
// The reservation field is the eviction floor instead — a tenant sitting
// at or below its reservation is never chosen as an eviction victim, so
// one greedy tenant can never push another below its reserved footprint.
package tenant

import (
	"encoding/json"
	"fmt"
	"os"

	"aecodes/internal/store"
)

// Prefix namespaces every non-anonymous tenant's keys in the backing
// store. The leading '!' keeps tenant namespaces out of the way of
// ordinary (anonymous) keys, following the segstore "!segstore/" reserved
// prefix convention.
const Prefix = "!tenant/"

// Anonymous is the tenant ID of clients that never performed the
// transport handshake. Its namespace is the raw keyspace, so old clients
// round-trip against a tenant-aware node unchanged.
const Anonymous = ""

// MaxIDLen bounds a tenant ID. Generous for human-chosen names, small
// against hostile handshakes.
const MaxIDLen = 64

// ValidateID checks a tenant ID: 1..MaxIDLen characters drawn from
// [a-z0-9._-], starting with a letter or digit. The empty string is the
// anonymous tenant and is accepted. The character set deliberately
// excludes '/' and '!' so an ID can neither escape its namespace prefix
// nor collide with reserved keyspaces.
func ValidateID(id string) error {
	if id == Anonymous {
		return nil
	}
	if len(id) > MaxIDLen {
		return fmt.Errorf("tenant: id of %d bytes exceeds limit %d", len(id), MaxIDLen)
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
			if i == 0 {
				return fmt.Errorf("tenant: id %q must start with a letter or digit", id)
			}
		default:
			return fmt.Errorf("tenant: id %q contains invalid byte %q", id, c)
		}
	}
	return nil
}

// Quota is one tenant's admission and eviction budget.
type Quota struct {
	// MaxBytes caps the tenant's live block bytes; 0 means unlimited.
	MaxBytes int64 `json:"max_bytes,omitempty"`
	// MaxBlocks caps the tenant's live block count; 0 means unlimited.
	MaxBlocks int64 `json:"max_blocks,omitempty"`
	// Reservation is the eviction floor: while the tenant's live bytes
	// are at or below it, the tenant is never an eviction victim.
	Reservation int64 `json:"reservation,omitempty"`
}

// Config tunes a Registry.
type Config struct {
	// Tenants maps known tenant IDs to their quotas.
	Tenants map[string]Quota `json:"tenants,omitempty"`
	// Default is the quota applied to tenants absent from Tenants —
	// including the anonymous tenant, unless it has an explicit entry
	// under the empty ID.
	Default Quota `json:"default,omitempty"`
	// Strict refuses handshakes from tenants absent from Tenants instead
	// of admitting them with the Default quota. The anonymous tenant is
	// always admitted.
	Strict bool `json:"strict,omitempty"`
	// HighWater is the node-wide eviction trigger in live bytes: a write
	// that leaves the node above it sheds cold tenant lattices until the
	// node is back below (or no evictable tenant remains). 0 disables
	// eviction.
	HighWater int64 `json:"high_water,omitempty"`
	// Policy picks eviction victims; nil selects LRU{}.
	Policy Policy `json:"-"`
}

// quotaFor resolves the quota a tenant gets under this config.
func (c Config) quotaFor(id string) (Quota, error) {
	if q, ok := c.Tenants[id]; ok {
		return q, nil
	}
	if c.Strict && id != Anonymous {
		return Quota{}, fmt.Errorf("tenant: unknown tenant %q on a strict node: %w", id, store.ErrQuotaExceeded)
	}
	return c.Default, nil
}

// LoadConfig reads a Config from a JSON file — the format behind the
// aestored -tenants flag:
//
//	{
//	  "default":    {"max_bytes": 104857600},
//	  "high_water": 1073741824,
//	  "strict":     false,
//	  "tenants": {
//	    "alice": {"max_bytes": 1048576, "reservation": 65536},
//	    "bob":   {}
//	  }
//	}
//
// Every tenant ID in the file is validated.
func LoadConfig(path string) (Config, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("tenant: reading config: %w", err)
	}
	var cfg Config
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return Config{}, fmt.Errorf("tenant: parsing %s: %w", path, err)
	}
	for id := range cfg.Tenants {
		if id == Anonymous {
			continue // explicit quota for the anonymous tenant
		}
		if err := ValidateID(id); err != nil {
			return Config{}, fmt.Errorf("tenant: config %s: %w", path, err)
		}
	}
	return cfg, nil
}
