package aecodes_test

import (
	"bytes"
	"math/rand"
	"testing"

	"aecodes"
	"aecodes/internal/cooperative"
	"aecodes/internal/entangle"
	"aecodes/internal/transport"
)

// startTCPNetwork boots n real TCP storage nodes and returns NodeStore
// clients plus the backing stores (for failure injection).
func startTCPNetwork(t *testing.T, n int) ([]cooperative.NodeStore, []*transport.MemStore) {
	t.Helper()
	nodes := make([]cooperative.NodeStore, n)
	stores := make([]*transport.MemStore, n)
	for i := 0; i < n; i++ {
		store := transport.NewMemStore()
		srv, err := transport.NewServer(store)
		if err != nil {
			t.Fatal(err)
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		client, err := transport.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			client.Close()
			srv.Close()
		})
		nodes[i] = client
		stores[i] = store
	}
	return nodes, stores
}

// TestIntegrationCooperativeOverTCP runs the §IV.A scenario end to end on
// real sockets: backup, total local loss, remote decode, node wipe,
// lattice repair, broker crash recovery.
func TestIntegrationCooperativeOverTCP(t *testing.T) {
	const blockSize = 256
	nodes, stores := startTCPNetwork(t, 6)
	params := aecodes.Params{Alpha: 3, S: 2, P: 5}
	broker, err := cooperative.NewBroker("carol", params, blockSize, nodes)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	originals := make([][]byte, 51)
	for i := 1; i <= 50; i++ {
		data := make([]byte, blockSize)
		rng.Read(data)
		originals[i] = data
		if _, err := broker.Backup(bg, data); err != nil {
			t.Fatalf("Backup(%d): %v", i, err)
		}
	}
	total := 0
	for _, s := range stores {
		total += s.Len()
	}
	if total != 150 {
		t.Fatalf("network holds %d parities, want 150", total)
	}

	// Total local loss: every block decoded over TCP.
	broker.DropLocal()
	for i := 1; i <= 50; i++ {
		got, err := broker.Read(bg, i)
		if err != nil {
			t.Fatalf("Read(%d): %v", i, err)
		}
		if !bytes.Equal(got, originals[i]) {
			t.Fatalf("Read(%d) content mismatch", i)
		}
	}

	// Storage node disk loss: regenerate its parities remotely.
	lost := stores[1].Len()
	stores[1].Clear()
	stats, err := broker.Repair(bg, entangle.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ParityRepaired != lost {
		t.Fatalf("regenerated %d parities, want %d", stats.ParityRepaired, lost)
	}
	if stores[1].Len() != lost {
		t.Fatalf("node 1 holds %d parities after repair, want %d", stores[1].Len(), lost)
	}

	// Broker crash: a fresh broker resumes from the network and produces
	// byte-identical parities for new blocks.
	resumed, err := cooperative.NewBroker("carol", params, blockSize, nodes)
	if err != nil {
		t.Fatal(err)
	}
	local := make(map[int][]byte, 50)
	for i := 1; i <= 50; i++ {
		local[i] = originals[i]
	}
	if err := resumed.RecoverState(bg, cooperative.RecoverOptions{Count: 50, Local: local}); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	extra := make([]byte, blockSize)
	rng.Read(extra)
	pos, err := resumed.Backup(bg, extra)
	if err != nil {
		t.Fatal(err)
	}
	if pos != 51 {
		t.Fatalf("resumed broker wrote position %d, want 51", pos)
	}
	// Cross-check against an uninterrupted reference encoder.
	ref, err := aecodes.New(params, blockSize)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		if _, err := ref.Entangle(originals[i]); err != nil {
			t.Fatal(err)
		}
	}
	refEnt, err := ref.Entangle(extra)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range refEnt.Parities {
		got, err := resumed.RepairParity(bg, p.Edge) // regenerates + re-uploads
		_ = got
		if err != nil {
			t.Fatalf("verifying parity %v: %v", p.Edge, err)
		}
	}
}

// TestIntegrationArchiveRoundTrip exercises the public API against the
// MemoryStore with a mixed damage profile at a realistic block size.
func TestIntegrationArchiveRoundTrip(t *testing.T) {
	const blockSize = 4096
	code, err := aecodes.New(aecodes.Params{Alpha: 3, S: 5, P: 5}, blockSize)
	if err != nil {
		t.Fatal(err)
	}
	store := aecodes.NewMemoryStore(blockSize)
	rng := rand.New(rand.NewSource(7))
	const n = 500
	originals := make([][]byte, n+1)
	for i := 1; i <= n; i++ {
		data := make([]byte, blockSize)
		rng.Read(data)
		originals[i] = data
		ent, err := code.Entangle(data)
		if err != nil {
			t.Fatal(err)
		}
		if err := store.PutData(bg, ent.Index, data); err != nil {
			t.Fatal(err)
		}
		for _, p := range ent.Parities {
			if err := store.PutParity(bg, p.Edge, p.Data); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Damage: 15% of data blocks and 15% of parities, uniformly.
	lat := code.Lattice()
	for i := 1; i <= n; i++ {
		if rng.Float64() < 0.15 {
			store.LoseData(i)
		}
		for _, class := range lat.Classes() {
			if rng.Float64() < 0.15 {
				e, err := lat.OutEdge(class, i)
				if err != nil {
					t.Fatal(err)
				}
				store.LoseParity(e)
			}
		}
	}
	stats, err := code.Repair(bg, store, aecodes.RepairOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.DataLoss() != 0 {
		t.Fatalf("data loss %d after 15%%/15%% damage", stats.DataLoss())
	}
	for i := 1; i <= n; i++ {
		got, ok := store.Data(i)
		if !ok || !bytes.Equal(got, originals[i]) {
			t.Fatalf("block %d corrupt after repair", i)
		}
	}
}
