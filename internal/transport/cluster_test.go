package transport

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"

	"aecodes/internal/store"
)

// fakeClusterHandler records heartbeats and serves a fixed usage table.
type fakeClusterHandler struct {
	mu     sync.Mutex
	stats  []NodeStat
	usages map[string]TenantUsage
	err    error
}

func (h *fakeClusterHandler) NodeStat(stat NodeStat) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.err != nil {
		return h.err
	}
	h.stats = append(h.stats, stat)
	return nil
}

func (h *fakeClusterHandler) Usage(tenant string) ([]TenantUsage, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.err != nil {
		return nil, h.err
	}
	if tenant != "" {
		u, ok := h.usages[tenant]
		if !ok {
			return nil, nil
		}
		return []TenantUsage{u}, nil
	}
	out := make([]TenantUsage, 0, len(h.usages))
	for _, u := range h.usages {
		out = append(out, u)
	}
	return out, nil
}

func (h *fakeClusterHandler) last() (NodeStat, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.stats) == 0 {
		return NodeStat{}, false
	}
	return h.stats[len(h.stats)-1], true
}

func clusterTestServer(t *testing.T, h ClusterHandler) string {
	t.Helper()
	srv, err := NewServer(NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	if h != nil {
		srv.SetClusterHandler(h)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr
}

func TestNodeStatRoundTrip(t *testing.T) {
	handler := &fakeClusterHandler{}
	addr := clusterTestServer(t, handler)
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	stat := NodeStat{
		ID:        "node-1",
		Addr:      "10.0.0.1:7000",
		Capacity:  1 << 30,
		Used:      12345,
		Segments:  3,
		DeadBytes: 678,
		Tenants: []TenantUsage{
			{Tenant: "", Bytes: 100, Blocks: 2},
			{Tenant: "acme", Bytes: 9000, Blocks: 9},
		},
	}
	if err := client.NodeStat(context.Background(), stat); err != nil {
		t.Fatalf("NodeStat: %v", err)
	}
	got, ok := handler.last()
	if !ok {
		t.Fatal("handler saw no heartbeat")
	}
	if !reflect.DeepEqual(got, stat) {
		t.Fatalf("heartbeat mangled in transit:\n got %+v\nwant %+v", got, stat)
	}
}

func TestNodeStatWithoutHandlerRefused(t *testing.T) {
	addr := clusterTestServer(t, nil)
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	err = client.NodeStat(context.Background(), NodeStat{ID: "n", Addr: "a"})
	if err == nil || !strings.Contains(err.Error(), "heartbeat") {
		t.Fatalf("want heartbeat refusal, got %v", err)
	}
	if _, err := client.Usage(context.Background(), ""); err == nil {
		t.Fatal("usage without handler must be refused")
	}
	// The refusals must not poison the connection for normal ops.
	if err := client.Put(context.Background(), "k", []byte("v")); err != nil {
		t.Fatalf("Put after refusal: %v", err)
	}
}

func TestUsageQuery(t *testing.T) {
	handler := &fakeClusterHandler{usages: map[string]TenantUsage{
		"acme": {Tenant: "acme", Bytes: 42, Blocks: 7},
		"beta": {Tenant: "beta", Bytes: 11, Blocks: 1},
	}}
	addr := clusterTestServer(t, handler)
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	one, err := client.Usage(context.Background(), "acme")
	if err != nil {
		t.Fatalf("Usage(acme): %v", err)
	}
	if len(one) != 1 || one[0] != (TenantUsage{Tenant: "acme", Bytes: 42, Blocks: 7}) {
		t.Fatalf("Usage(acme) = %+v", one)
	}
	all, err := client.Usage(context.Background(), "")
	if err != nil {
		t.Fatalf("Usage(all): %v", err)
	}
	if len(all) != 2 {
		t.Fatalf("Usage(all) = %+v, want 2 entries", all)
	}
	missing, err := client.Usage(context.Background(), "ghost")
	if err != nil {
		t.Fatalf("Usage(ghost): %v", err)
	}
	if len(missing) != 0 {
		t.Fatalf("Usage(ghost) = %+v, want empty", missing)
	}
}

func TestClusterOpsOverPool(t *testing.T) {
	handler := &fakeClusterHandler{usages: map[string]TenantUsage{
		"acme": {Tenant: "acme", Bytes: 5, Blocks: 1},
	}}
	addr := clusterTestServer(t, handler)
	pool, err := DialPool(addr, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	if err := pool.NodeStat(context.Background(), NodeStat{ID: "n", Addr: addr}); err != nil {
		t.Fatalf("pool NodeStat: %v", err)
	}
	got, err := pool.Usage(context.Background(), "acme")
	if err != nil {
		t.Fatalf("pool Usage: %v", err)
	}
	if len(got) != 1 || got[0].Bytes != 5 {
		t.Fatalf("pool Usage = %+v", got)
	}
}

func TestClusterHandlerErrorsTravelTyped(t *testing.T) {
	handler := &fakeClusterHandler{err: store.ErrQuotaExceeded}
	addr := clusterTestServer(t, handler)
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	err = client.NodeStat(context.Background(), NodeStat{ID: "n", Addr: "a"})
	if !errors.Is(err, store.ErrQuotaExceeded) {
		t.Fatalf("want typed quota error, got %v", err)
	}
}

func TestNodeStatCodecRejectsMalformed(t *testing.T) {
	good, err := EncodeNodeStat(NodeStat{ID: "n", Addr: "a:1", Capacity: 1,
		Tenants: []TenantUsage{{Tenant: "t", Bytes: 1, Blocks: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		id      string
		payload []byte
	}{
		{"empty id", "", good},
		{"empty payload", "n", nil},
		{"bad version", "n", append([]byte{99}, good[1:]...)},
		{"truncated", "n", good[:len(good)-1]},
		{"trailing", "n", append(append([]byte{}, good...), 0)},
	}
	for _, tc := range cases {
		if _, err := DecodeNodeStat(tc.id, tc.payload); err == nil {
			t.Errorf("%s: decode accepted malformed heartbeat", tc.name)
		}
	}
	if _, err := EncodeNodeStat(NodeStat{ID: "n", Used: -1}); err == nil {
		t.Error("encode accepted negative counter")
	}
	if _, err := encodeUsages([]TenantUsage{{Tenant: "t", Bytes: -1}}); err == nil {
		t.Error("encode accepted negative usage")
	}
}
