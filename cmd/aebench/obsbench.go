// The obs experiment prices the metrics subsystem itself: a counter
// add, a gauge delta, and a histogram record on the hot path, serial
// and from all cores at once. Instrumentation rides inside serveConn
// and segstore's append path, so its cost budget (~20 ns/op, see
// internal/obs) is a guarded number like any other hot-path figure —
// if sharding ever breaks and records start contending, this
// experiment's ns/op explodes and the bench guard catches it.
package main

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"aecodes/internal/benchfmt"
	"aecodes/internal/obs"
)

// obsBench measures the record-side cost of the obs primitives against
// a private registry (the process-global one stays clean).
func obsBench() error {
	const iters = 2_000_000
	reg := obs.NewRegistry()
	sc := reg.Scope("bench")
	counter := sc.Counter("counter")
	gauge := sc.Gauge("gauge")
	hist := sc.Histogram("hist")

	fmt.Printf("Metrics record overhead — %d ops per primitive, %d cores\n",
		iters, runtime.GOMAXPROCS(0))

	serial := func(name string, fn func(i int64)) float64 {
		start := time.Now()
		for i := int64(0); i < iters; i++ {
			fn(i)
		}
		ns := float64(time.Since(start).Nanoseconds()) / iters
		fmt.Printf("  %-18s %6.1f ns/op\n", name+":", ns)
		record(benchfmt.Result{Experiment: "obs", Name: name, NsPerOp: ns})
		return ns
	}
	serial("counter-add", func(i int64) { counter.Add(1) })
	serial("gauge-add", func(i int64) { gauge.Add(1) })
	serial("hist-record", func(i int64) { hist.Record(i) })

	// The parallel setting is the one sharding exists for: every core
	// hammering the same handles. ns/op here is wall time × cores ÷ ops,
	// i.e. CPU cost per record — flat relative to serial means no
	// contention; at GOMAXPROCS=1 it duplicates serial, so skip it.
	if procs := runtime.GOMAXPROCS(0); procs > 1 {
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < procs; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := int64(0); i < iters; i++ {
					counter.Add(1)
					hist.Record(i)
				}
			}()
		}
		wg.Wait()
		ns := float64(time.Since(start).Nanoseconds()) * float64(procs) / (iters * float64(procs) * 2)
		fmt.Printf("  %-18s %6.1f ns/op (counter+hist from %d goroutines)\n", "parallel:", ns, procs)
		record(benchfmt.Result{Experiment: "obs", Name: "parallel-record", NsPerOp: ns})
	}
	if counter.Value() < iters {
		return fmt.Errorf("aebench: obs counter lost updates (%d)", counter.Value())
	}
	return nil
}
