package placement

import (
	"fmt"
	"testing"
)

func candidateSet(n int) []Candidate {
	out := make([]Candidate, n)
	for i := range out {
		out[i] = Candidate{ID: fmt.Sprintf("node-%02d", i), Weight: 1}
	}
	return out
}

func volID(i int) string { return fmt.Sprintf("user-%d/vol-%d", i%97, i) }

func TestRendezvousDeterministicAndOrderIndependent(t *testing.T) {
	var r Rendezvous
	nodes := candidateSet(8)
	reversed := make([]Candidate, len(nodes))
	for i, c := range nodes {
		reversed[len(nodes)-1-i] = c
	}
	for i := 0; i < 500; i++ {
		key := volID(i)
		a := r.Pick(key, nodes)
		b := r.Pick(key, nodes)
		if a != b {
			t.Fatalf("Pick(%q) not deterministic: %d vs %d", key, a, b)
		}
		if nodes[a].ID != reversed[r.Pick(key, reversed)].ID {
			t.Fatalf("Pick(%q) depends on candidate order", key)
		}
	}
	if got := r.Pick("v", nil); got != -1 {
		t.Fatalf("Pick over no candidates = %d, want -1", got)
	}
	if got := r.Pick("v", []Candidate{{ID: "full", Weight: 0}}); got != -1 {
		t.Fatalf("Pick over zero-weight candidates = %d, want -1", got)
	}
}

// TestRendezvousMinimalDisruptionOnJoin pins the property the cluster
// manager depends on: when a node joins, the only volumes that change
// owner are the ones the new node wins — every other volume stays put —
// and the stolen fraction is close to the newcomer's weight share.
// Deterministic: HRW scores are pure functions of (key, id, weight), so
// this test is seed-stable by construction.
func TestRendezvousMinimalDisruptionOnJoin(t *testing.T) {
	var r Rendezvous
	const volumes = 4000
	before := candidateSet(9)
	after := candidateSet(10) // node-09 joins

	moved := 0
	for i := 0; i < volumes; i++ {
		key := volID(i)
		ownerBefore := before[r.Pick(key, before)].ID
		ownerAfter := after[r.Pick(key, after)].ID
		if ownerBefore != ownerAfter {
			moved++
			if ownerAfter != "node-09" {
				t.Fatalf("volume %q moved %s→%s, not to the joining node", key, ownerBefore, ownerAfter)
			}
		}
	}
	// Expected share is 1/10 = 400 volumes; allow ±40% slack, which a
	// uniform HRW meets with huge margin while still catching a policy
	// that reshuffles mod-N style (~90% movement) or never rebalances.
	share := float64(moved) / volumes
	if share < 0.06 || share > 0.14 {
		t.Fatalf("join moved %.1f%% of volumes, want ~10%%", share*100)
	}
}

// TestRendezvousMinimalDisruptionOnLeave pins the converse: when a node
// leaves, only its own volumes move; survivors keep everything they had.
func TestRendezvousMinimalDisruptionOnLeave(t *testing.T) {
	var r Rendezvous
	const volumes = 4000
	before := candidateSet(10)
	after := candidateSet(9) // node-09 leaves

	moved := 0
	for i := 0; i < volumes; i++ {
		key := volID(i)
		ownerBefore := before[r.Pick(key, before)].ID
		ownerAfter := after[r.Pick(key, after)].ID
		if ownerBefore != ownerAfter {
			moved++
			if ownerBefore != "node-09" {
				t.Fatalf("volume %q moved off surviving node %s", key, ownerBefore)
			}
		}
	}
	share := float64(moved) / volumes
	if share < 0.06 || share > 0.14 {
		t.Fatalf("leave moved %.1f%% of volumes, want ~10%%", share*100)
	}
}

// TestRendezvousWeightedShare checks weights steer expected share: a
// double-weight node should win about twice the volumes of a unit node.
func TestRendezvousWeightedShare(t *testing.T) {
	var r Rendezvous
	nodes := candidateSet(5)
	nodes[0].Weight = 2 // total weight 6, expected share 2/6

	const volumes = 6000
	wins := 0
	for i := 0; i < volumes; i++ {
		if nodes[r.Pick(volID(i), nodes)].ID == "node-00" {
			wins++
		}
	}
	share := float64(wins) / volumes
	if share < 0.26 || share > 0.41 {
		t.Fatalf("double-weight node won %.1f%% of volumes, want ~33%%", share*100)
	}
}

func TestRendezvousRank(t *testing.T) {
	var r Rendezvous
	nodes := candidateSet(6)
	nodes[3].Weight = 0 // full node: excluded from every rank
	for i := 0; i < 200; i++ {
		key := volID(i)
		ranked := r.Rank(key, nodes)
		if len(ranked) != 5 {
			t.Fatalf("Rank returned %d candidates, want 5", len(ranked))
		}
		if ranked[0] != r.Pick(key, nodes) {
			t.Fatalf("Rank(%q)[0] disagrees with Pick", key)
		}
		seen := map[int]bool{}
		for _, idx := range ranked {
			if idx == 3 {
				t.Fatalf("Rank(%q) included zero-weight candidate", key)
			}
			if seen[idx] {
				t.Fatalf("Rank(%q) repeated index %d", key, idx)
			}
			seen[idx] = true
		}
	}
}
