package segstore_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"aecodes/internal/segstore"
	"aecodes/internal/store"
)

func openStore(t *testing.T, dir string, opts segstore.Options) *segstore.Store {
	t.Helper()
	s, err := segstore.Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".seg") {
			out = append(out, e.Name())
		}
	}
	return out
}

func TestPutGetDelRoundTrip(t *testing.T) {
	s := openStore(t, t.TempDir(), segstore.Options{})
	if _, ok := s.Get("nope"); ok {
		t.Fatal("empty store served a block")
	}
	if err := s.Put("a", []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", []byte("beta")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("a"); !ok || string(got) != "alpha" {
		t.Fatalf("Get(a) = %q, %v", got, ok)
	}
	// Overwrite: last write wins.
	if err := s.Put("a", []byte("alpha2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get("a"); string(got) != "alpha2" {
		t.Fatalf("after overwrite Get(a) = %q", got)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	s.Del("a")
	if _, ok := s.Get("a"); ok {
		t.Fatal("deleted key still served")
	}
	if !s.Has("b") || s.Has("a") {
		t.Fatal("Has disagrees with Get")
	}
	// Deleting a missing key is a no-op.
	s.Del("never-existed")
	if s.Len() != 1 {
		t.Fatalf("Len after deletes = %d, want 1", s.Len())
	}
	// Empty blocks are storable and distinct from missing.
	if err := s.Put("empty", nil); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("empty"); !ok || len(got) != 0 {
		t.Fatalf("Get(empty) = %v, %v, want empty block", got, ok)
	}
}

func TestRecordValidation(t *testing.T) {
	s := openStore(t, t.TempDir(), segstore.Options{})
	if err := s.Put("", []byte("x")); err == nil {
		t.Error("accepted an empty key")
	}
	if err := s.Put(strings.Repeat("k", segstore.MaxKeyLen+1), []byte("x")); err == nil {
		t.Error("accepted an oversized key")
	}
}

func TestReopenRestoresIndex(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, segstore.Options{})
	blocks := map[string][]byte{}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("blk-%03d", i)
		data := bytes.Repeat([]byte{byte(i)}, 128)
		blocks[key] = data
		if err := s.Put(key, data); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrites and a tombstone must replay correctly too.
	blocks["blk-007"] = []byte("rewritten")
	if err := s.Put("blk-007", blocks["blk-007"]); err != nil {
		t.Fatal(err)
	}
	s.Del("blk-013")
	delete(blocks, "blk-013")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := openStore(t, dir, segstore.Options{})
	if r.Len() != len(blocks) {
		t.Fatalf("reopened Len = %d, want %d", r.Len(), len(blocks))
	}
	if st := r.Stats(); st.TruncatedBytes != 0 {
		t.Fatalf("clean reopen truncated %d bytes", st.TruncatedBytes)
	}
	for key, want := range blocks {
		got, ok := r.Get(key)
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("reopened Get(%s) = %v, %v", key, got, ok)
		}
	}
	if _, ok := r.Get("blk-013"); ok {
		t.Fatal("tombstoned key resurrected by reopen")
	}
}

func TestRotation(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, segstore.Options{SegmentSize: 256})
	for i := 0; i < 40; i++ {
		if err := s.Put(fmt.Sprintf("k%02d", i), bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Segments < 5 {
		t.Fatalf("Segments = %d after 40 puts with 256-byte segments, want several", st.Segments)
	}
	if got := len(segFiles(t, dir)); got != st.Segments {
		t.Fatalf("%d .seg files on disk, Stats says %d", got, st.Segments)
	}
	for i := 0; i < 40; i++ {
		got, ok := s.Get(fmt.Sprintf("k%02d", i))
		if !ok || !bytes.Equal(got, bytes.Repeat([]byte{byte(i)}, 64)) {
			t.Fatalf("Get(k%02d) across rotated segments = %v, %v", i, got, ok)
		}
	}
	// A record larger than the segment size must still be accepted.
	big := bytes.Repeat([]byte{0xBB}, 1024)
	if err := s.Put("big", big); err != nil {
		t.Fatalf("oversized-for-segment record rejected: %v", err)
	}
	if got, ok := s.Get("big"); !ok || !bytes.Equal(got, big) {
		t.Fatal("oversized-for-segment record not served back")
	}
}

func TestCompact(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, segstore.Options{SegmentSize: 512})
	content := func(i, gen int) []byte {
		return bytes.Repeat([]byte{byte(i), byte(gen)}, 50)
	}
	for i := 0; i < 20; i++ {
		if err := s.Put(fmt.Sprintf("k%02d", i), content(i, 0)); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite everything (doubling the log) and delete a quarter.
	for i := 0; i < 20; i++ {
		if err := s.Put(fmt.Sprintf("k%02d", i), content(i, 1)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i += 4 {
		s.Del(fmt.Sprintf("k%02d", i))
	}
	before := s.Stats()
	if before.DeadBytes == 0 {
		t.Fatal("overwrites produced no dead bytes")
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after := s.Stats()
	if after.Segments >= before.Segments {
		t.Fatalf("Compact kept %d segments (was %d)", after.Segments, before.Segments)
	}
	if after.DeadBytes >= before.DeadBytes {
		t.Fatalf("Compact left DeadBytes %d (was %d)", after.DeadBytes, before.DeadBytes)
	}
	verify := func(s *segstore.Store, label string) {
		t.Helper()
		for i := 0; i < 20; i++ {
			key := fmt.Sprintf("k%02d", i)
			got, ok := s.Get(key)
			if i%4 == 0 {
				if ok {
					t.Fatalf("%s: deleted %s resurrected", label, key)
				}
				continue
			}
			if !ok || !bytes.Equal(got, content(i, 1)) {
				t.Fatalf("%s: Get(%s) = %v, %v, want generation 1", label, key, got, ok)
			}
		}
	}
	verify(s, "after compact")
	// Durability of the compacted state: reopen and verify again.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := openStore(t, dir, segstore.Options{SegmentSize: 512})
	verify(r, "after compact+reopen")
	// Compacting a store with nothing sealed is a harmless no-op.
	if err := r.Compact(); err != nil {
		t.Fatal(err)
	}
	verify(r, "after idle compact")
}

func TestBatchOps(t *testing.T) {
	s := openStore(t, t.TempDir(), segstore.Options{SegmentSize: 256})
	items := []store.KV{
		{Key: "x", Data: []byte("ex")},
		{Key: "y", Data: []byte("why")},
		{Key: "z", Data: nil},
	}
	if err := s.PutBatch(items); err != nil {
		t.Fatal(err)
	}
	got := s.GetBatch([]string{"x", "missing", "z", "y"})
	if len(got) != 4 {
		t.Fatalf("GetBatch returned %d entries, want 4", len(got))
	}
	if string(got[0]) != "ex" || string(got[3]) != "why" {
		t.Fatalf("GetBatch content wrong: %q %q", got[0], got[3])
	}
	if got[1] != nil {
		t.Fatal("missing key came back non-nil")
	}
	if got[2] == nil || len(got[2]) != 0 {
		t.Fatal("stored empty block must be non-nil empty, distinguishing it from missing")
	}
	// A batch with an invalid entry is rejected before anything is written.
	bad := []store.KV{{Key: "", Data: []byte("x")}}
	if err := s.PutBatch(bad); err == nil {
		t.Fatal("PutBatch accepted an empty key")
	}
}

// TestPutBatchOwnedConsumesBuffers pins the ownership-transfer contract
// on the durable store: the vectored write path must have the payload
// fully on its way to the log before PutBatchOwned returns, so a caller
// recycling (scribbling over) the frame buffer immediately afterwards —
// as the transport server does — cannot corrupt what was stored, even
// across a reopen.
func TestPutBatchOwnedConsumesBuffers(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, segstore.Options{SegmentSize: 4096})
	arena := make([]byte, 96)
	for i := range arena {
		arena[i] = byte(i + 1)
	}
	want := append([]byte(nil), arena...)
	items := []store.KV{
		{Key: "a", Data: arena[:48]},
		{Key: "b", Data: arena[48:]},
	}
	if err := s.PutBatchOwned(items); err != nil {
		t.Fatal(err)
	}
	for i := range arena {
		arena[i] = 0xEE
	}
	check := func(st *segstore.Store, label string) {
		t.Helper()
		a, okA := st.Get("a")
		b, okB := st.Get("b")
		if !okA || !okB || !bytes.Equal(a, want[:48]) || !bytes.Equal(b, want[48:]) {
			t.Fatalf("%s: stored blocks reflect the recycled arena", label)
		}
	}
	check(s, "in-memory")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	check(openStore(t, dir, segstore.Options{SegmentSize: 4096}), "after reopen")
}

func TestConcurrentPutGet(t *testing.T) {
	s := openStore(t, t.TempDir(), segstore.Options{SegmentSize: 4096})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("w%d-%d", w, i)
				data := bytes.Repeat([]byte{byte(w), byte(i)}, 20)
				if err := s.Put(key, data); err != nil {
					t.Errorf("Put(%s): %v", key, err)
					return
				}
				got, ok := s.Get(key)
				if !ok || !bytes.Equal(got, data) {
					t.Errorf("Get(%s) after Put = %v, %v", key, got, ok)
					return
				}
				if i%10 == 0 {
					s.Del(key)
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 8*45 {
		t.Fatalf("Len = %d, want %d", s.Len(), 8*45)
	}
}

func TestClosedStoreRefusesWork(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, segstore.Options{})
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("Close is not idempotent")
	}
	if err := s.Put("k2", []byte("v")); err == nil {
		t.Fatal("Put on closed store succeeded")
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("Get on closed store succeeded")
	}
}

// TestForeignFilesIgnored pins that non-segment files in the data
// directory (editor droppings, manifests) neither break open nor get
// deleted by compaction.
func TestForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("hands off"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notanumber.seg"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := openStore(t, dir, segstore.Options{SegmentSize: 128})
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte("data")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "README")); err != nil {
		t.Fatal("compaction removed a foreign file")
	}
	if _, err := os.Stat(filepath.Join(dir, "notanumber.seg")); err != nil {
		t.Fatal("compaction removed a non-segment .seg file")
	}
}

// TestSecondOpenRefused pins the single-writer lock: a second Open on a
// directory already held by a live store fails instead of interleaving
// appends with it. (flock dies with its holder, so crash-restart is
// unaffected — the SIGKILL integration test covers that side.)
func TestSecondOpenRefused(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, segstore.Options{})
	if _, err := segstore.Open(dir, segstore.Options{}); err == nil {
		t.Fatal("second Open on a held directory succeeded")
	}
	// Releasing the first store frees the directory.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := segstore.Open(dir, segstore.Options{})
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	r.Close()
}

// TestStatBatchAgreesWithGetBatch pins the presence probe: same
// availability view as GetBatch (including CRC verification), plus the
// block length, without materializing content.
func TestStatBatchAgreesWithGetBatch(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, segstore.Options{})
	if err := s.Put("a", []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("empty", nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("corrupt", bytes.Repeat([]byte{7}, 64)); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the "corrupt" record on disk.
	seg := activeSegment(t, dir)
	f, err := os.OpenFile(seg, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	info, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, info.Size()-1); err != nil {
		t.Fatal(err)
	}
	f.Close()

	keys := []string{"a", "empty", "missing", "corrupt"}
	sizes := s.StatBatch(keys)
	blocks := s.GetBatch(keys)
	want := []int{5, 0, -1, -1}
	for i, key := range keys {
		if sizes[i] != want[i] {
			t.Errorf("StatBatch[%s] = %d, want %d", key, sizes[i], want[i])
		}
		if (sizes[i] >= 0) != (blocks[i] != nil) {
			t.Errorf("StatBatch and GetBatch disagree on %s: size %d, block %v", key, sizes[i], blocks[i])
		}
	}
}

// TestAutoCompactionOnDeadRatio pins the Options.CompactRatio trigger:
// churning overwrites across several rotations accumulates dead bytes in
// sealed segments until the ratio crosses the threshold, at which point
// the store compacts itself mid-serve — live data intact, dead share
// back under the ratio, old sealed files gone.
func TestAutoCompactionOnDeadRatio(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, segstore.Options{SegmentSize: 512, CompactRatio: 0.5})
	payload := func(round int) []byte {
		return bytes.Repeat([]byte{byte('a' + round)}, 100)
	}
	// Overwrite the same small key set over and over: every superseded
	// record in a sealed segment is dead weight.
	const rounds = 20
	for round := 0; round < rounds; round++ {
		for k := 0; k < 4; k++ {
			if err := s.Put(fmt.Sprintf("k%d", k), payload(round)); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := s.Stats()
	physical := int64(0)
	for _, name := range segFiles(t, dir) {
		info, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		physical += info.Size()
	}
	if physical == 0 || float64(st.DeadBytes)/float64(physical) >= 0.5 {
		t.Fatalf("auto-compaction never held the dead ratio: %d dead of %d physical bytes across %d segments",
			st.DeadBytes, physical, st.Segments)
	}
	// A churn this size crosses 512-byte segments many times over; had
	// no compaction run, nearly every sealed segment would be dead.
	if st.Segments > 6 {
		t.Fatalf("store kept %d segments; auto-compaction is not reclaiming", st.Segments)
	}
	// Live data intact after however many in-line compactions ran.
	for k := 0; k < 4; k++ {
		got, ok := s.Get(fmt.Sprintf("k%d", k))
		if !ok || !bytes.Equal(got, payload(rounds-1)) {
			t.Fatalf("k%d lost or stale after auto-compaction (ok=%v)", k, ok)
		}
	}
	// And the compacted log replays identically.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir, segstore.Options{SegmentSize: 512})
	for k := 0; k < 4; k++ {
		got, ok := s2.Get(fmt.Sprintf("k%d", k))
		if !ok || !bytes.Equal(got, payload(rounds-1)) {
			t.Fatalf("k%d wrong after reopening a compacted log (ok=%v)", k, ok)
		}
	}
}

// TestDeadBytesIncrementalAgreesWithCompact pins the incremental
// dead-bytes accounting: Stats' number equals what a Compact call
// actually reclaims, and deletes in sealed segments count.
func TestDeadBytesIncrementalAgreesWithCompact(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, segstore.Options{SegmentSize: 256})
	for i := 0; i < 12; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), bytes.Repeat([]byte{1}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		s.Del(fmt.Sprintf("k%d", i))
	}
	if err := s.Put("k3", bytes.Repeat([]byte{2}, 64)); err != nil { // resurrect one
		t.Fatal(err)
	}
	dead := s.Stats().DeadBytes
	if dead == 0 {
		t.Fatal("churn left no dead bytes in sealed segments")
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	// Compaction reclaims what Stats promised. Rotations during the
	// re-append can seal the previously active segment, turning its
	// tombstones into fresh (small) dead weight — so the bound is "far
	// less than before", not zero.
	if after := s.Stats().DeadBytes; after >= dead/2 {
		t.Fatalf("DeadBytes = %d after Compact, want well under the %d reclaimed", after, dead)
	}
	for i := 0; i < 12; i++ {
		_, ok := s.Get(fmt.Sprintf("k%d", i))
		wantOK := i >= 6 || i == 3
		if ok != wantOK {
			t.Errorf("k%d present=%v after compact, want %v", i, ok, wantOK)
		}
	}
}
