// Package entangle implements the alpha entanglement encoder and the
// round-based repair engine — the primary contribution of the DSN'18 paper
// (§III "Alpha Entanglement Codes").
//
// The encoder consumes data blocks in lattice order and emits α parity
// blocks per data block, each extending one strand: the entanglement
// function "computes the exclusive-or (XOR) of two consecutive blocks at the
// head of a strand and inserts the output adjacent to the last block"
// (§III). The encoder therefore only needs to keep the current head parity
// of each of the s+(α−1)·p strands in memory — for AE(3,5,5) that is 15
// blocks, exactly the broker memory footprint described in §IV.A.
//
// The repair engine implements the decoder of §III.B: a data block is
// rebuilt from any complete pp-tuple (the two parities adjacent to it on one
// strand, α options), a parity block from either of its two dp-tuples (an
// incident data block plus that block's other parity on the same strand).
// Multiple failures are repaired in synchronous rounds until a fixpoint is
// reached (§V.C.4 "Code Performance").
package entangle

import (
	"fmt"

	"aecodes/internal/lattice"
	"aecodes/internal/xorblock"
)

// Parity is one encoder output: the content of edge Edge. When a puncture
// policy is installed, Stored is false for parities the system chooses not
// to persist (§III "Reducing Storage Overhead"); the encoder still computes
// them because strands must keep growing.
type Parity struct {
	Edge   lattice.Edge
	Data   []byte
	Stored bool
}

// Entanglement is the result of entangling one data block: its lattice
// position and the α parities created by the entanglement function.
type Entanglement struct {
	Index    int
	Parities []Parity
}

// PuncturePolicy decides whether a freshly computed parity should be stored.
// Returning false punctures (drops) the parity.
type PuncturePolicy func(e lattice.Edge) bool

// Encoder entangles a stream of equally sized data blocks into a helical
// lattice. It is not safe for concurrent use; wrap it in a mutex or use one
// encoder per lattice.
type Encoder struct {
	lat       *lattice.Lattice
	blockSize int
	next      int      // position assigned to the next data block (counter c+1)
	heads     [][]byte // current head parity per dense strand id
	puncture  PuncturePolicy
}

// NewEncoder returns an encoder for the given code parameters and block
// size. All data blocks passed to Entangle must have exactly blockSize
// bytes; parities have the same size ("data and parity blocks with identical
// size", §III.B).
func NewEncoder(params lattice.Params, blockSize int) (*Encoder, error) {
	lat, err := lattice.New(params)
	if err != nil {
		return nil, err
	}
	if blockSize <= 0 {
		return nil, fmt.Errorf("entangle: block size must be positive, got %d", blockSize)
	}
	heads := make([][]byte, params.StrandCount())
	for i := range heads {
		heads[i] = make([]byte, blockSize) // strands are zero-seeded
	}
	return &Encoder{
		lat:       lat,
		blockSize: blockSize,
		next:      1,
		heads:     heads,
	}, nil
}

// Lattice returns the lattice geometry the encoder writes into.
func (e *Encoder) Lattice() *lattice.Lattice { return e.lat }

// BlockSize returns the configured block size in bytes.
func (e *Encoder) BlockSize() int { return e.blockSize }

// Next returns the lattice position that the next call to Entangle will
// assign (the paper's counter c, plus one).
func (e *Encoder) Next() int { return e.next }

// SetPuncture installs a puncture policy. A nil policy stores every parity.
func (e *Encoder) SetPuncture(p PuncturePolicy) { e.puncture = p }

// Entangle assigns the next lattice position to data and returns the α
// parities created. The returned parity buffers are private copies; the
// caller owns them. The input slice is retained only for the duration of
// the call.
func (e *Encoder) Entangle(data []byte) (Entanglement, error) {
	return e.entangle(data, func(int) []byte { return make([]byte, e.blockSize) })
}

// EntangleInto is like Entangle but writes the α parities into the supplied
// buffers instead of allocating: bufs must hold exactly α slices of
// blockSize bytes each, and Parities[k].Data aliases bufs[k] on return. The
// caller may recycle the buffers once it is done with the Entanglement —
// together with a xorblock.Pool this makes steady-state encoding
// allocation-free.
func (e *Encoder) EntangleInto(data []byte, bufs [][]byte) (Entanglement, error) {
	if len(bufs) != len(e.lat.Classes()) {
		return Entanglement{}, fmt.Errorf("entangle: got %d parity buffers, want %d", len(bufs), len(e.lat.Classes()))
	}
	for k, b := range bufs {
		if len(b) != e.blockSize {
			return Entanglement{}, fmt.Errorf("entangle: parity buffer %d has %d bytes, want %d", k, len(b), e.blockSize)
		}
	}
	return e.entangle(data, func(k int) []byte { return bufs[k] })
}

// EntangleBatch entangles blocks in order, drawing every parity buffer from
// pool (which must hand out blockSize-byte blocks). The caller owns the
// returned parity buffers and should Put them back into the pool when done.
// A nil pool falls back to plain allocation.
func (e *Encoder) EntangleBatch(blocks [][]byte, pool *xorblock.Pool) ([]Entanglement, error) {
	if pool != nil && pool.BlockSize() != e.blockSize {
		return nil, fmt.Errorf("entangle: pool block size %d, want %d", pool.BlockSize(), e.blockSize)
	}
	alloc := func(int) []byte { return make([]byte, e.blockSize) }
	if pool != nil {
		alloc = func(int) []byte { return pool.Get() }
	}
	out := make([]Entanglement, 0, len(blocks))
	for _, data := range blocks {
		ent, err := e.entangle(data, alloc)
		if err != nil {
			return out, err
		}
		out = append(out, ent)
	}
	return out, nil
}

// entangle is the shared core: buf(k) supplies the output buffer for the
// k-th parity. Each strand head is advanced in place with a single XOR pass
// (head = data XOR head) and copied out once, rather than XOR-allocating a
// fresh block and copying it back into the head.
func (e *Encoder) entangle(data []byte, buf func(k int) []byte) (Entanglement, error) {
	if len(data) != e.blockSize {
		return Entanglement{}, fmt.Errorf("entangle: data block has %d bytes, want %d", len(data), e.blockSize)
	}
	i := e.next
	classes := e.lat.Classes()
	parities := make([]Parity, 0, len(classes))
	for k, class := range classes {
		out, err := e.lat.OutEdge(class, i)
		if err != nil {
			return Entanglement{}, err
		}
		sid, err := e.lat.StrandID(class, i)
		if err != nil {
			return Entanglement{}, err
		}
		// p_{i,j} = d_i XOR p_{h,i}: the fresh parity is also the new head,
		// so compute it directly into the head slot.
		head := e.heads[sid]
		if err := xorblock.XorInto(head, data, head); err != nil {
			return Entanglement{}, err
		}
		dst := buf(k)
		copy(dst, head)
		stored := e.puncture == nil || e.puncture(out)
		parities = append(parities, Parity{Edge: out, Data: dst, Stored: stored})
	}
	e.next++
	return Entanglement{Index: i, Parities: parities}, nil
}

// StrandOp is one strand's share of entangling a single data block, as
// planned by PlanNext. Ops for distinct strand ids are independent; ops for
// the same strand must be applied in the order they were planned.
type StrandOp struct {
	// Index is the lattice position of the data block being entangled.
	Index int
	// StrandID is the dense strand id whose head this op advances.
	StrandID int
	// Edge is the out-edge the resulting parity lives on.
	Edge lattice.Edge
	// Stored reflects the puncture policy at planning time.
	Stored bool
}

// PlanNext reserves the next lattice position and returns the α strand
// operations that entangle it, without touching any block content. It gives
// pipelined encoders the dependency structure of the lattice: PlanNext
// itself must be called serially, but the returned ops may be applied
// concurrently by ApplyOp as long as per-strand order is preserved.
func (e *Encoder) PlanNext() (int, []StrandOp, error) {
	i := e.next
	classes := e.lat.Classes()
	ops := make([]StrandOp, 0, len(classes))
	for _, class := range classes {
		out, err := e.lat.OutEdge(class, i)
		if err != nil {
			return 0, nil, err
		}
		sid, err := e.lat.StrandID(class, i)
		if err != nil {
			return 0, nil, err
		}
		stored := e.puncture == nil || e.puncture(out)
		ops = append(ops, StrandOp{Index: i, StrandID: sid, Edge: out, Stored: stored})
	}
	e.next++
	return i, ops, nil
}

// ApplyOp executes one planned strand operation: the strand head becomes
// data XOR head in a single in-place XOR pass, and the returned Parity's
// Data field aliases that head. The alias is valid only until the next op
// on the same strand is applied; consumers must copy (or transmit) it
// before then. ApplyOp calls for distinct strand ids may run concurrently;
// calls for one strand must be serialised in plan order. ApplyOp must not
// race with Entangle, Heads or RestoreHeads.
func (e *Encoder) ApplyOp(op StrandOp, data []byte) (Parity, error) {
	if len(data) != e.blockSize {
		return Parity{}, fmt.Errorf("entangle: data block has %d bytes, want %d", len(data), e.blockSize)
	}
	if op.StrandID < 0 || op.StrandID >= len(e.heads) {
		return Parity{}, fmt.Errorf("entangle: strand id %d out of range [0,%d)", op.StrandID, len(e.heads))
	}
	head := e.heads[op.StrandID]
	if err := xorblock.XorInto(head, data, head); err != nil {
		return Parity{}, err
	}
	return Parity{Edge: op.Edge, Data: head, Stored: op.Stored}, nil
}

// StrandHead is a snapshot of one strand's current head parity, keyed by the
// dense strand id. Heads returned by Heads can be fed to RestoreHeads to
// resume encoding after a broker crash by refetching the last parity of each
// strand from remote nodes (§IV.A: "If the broker crashes, it only needs to
// retrieve the p-blocks from the remote nodes").
type StrandHead struct {
	StrandID int
	Data     []byte
}

// Heads returns a deep copy of the current strand heads together with the
// next position, forming a complete resumable encoder state.
func (e *Encoder) Heads() (next int, heads []StrandHead) {
	heads = make([]StrandHead, len(e.heads))
	for i, h := range e.heads {
		cp := make([]byte, len(h))
		copy(cp, h)
		heads[i] = StrandHead{StrandID: i, Data: cp}
	}
	return e.next, heads
}

// RestoreHeads reinstates encoder state captured with Heads. It returns an
// error when a head has the wrong size or an out-of-range strand id, or when
// next is not positive.
func (e *Encoder) RestoreHeads(next int, heads []StrandHead) error {
	if next < 1 {
		return fmt.Errorf("entangle: next position must be >= 1, got %d", next)
	}
	for _, h := range heads {
		if h.StrandID < 0 || h.StrandID >= len(e.heads) {
			return fmt.Errorf("entangle: strand id %d out of range [0,%d)", h.StrandID, len(e.heads))
		}
		if len(h.Data) != e.blockSize {
			return fmt.Errorf("entangle: head for strand %d has %d bytes, want %d", h.StrandID, len(h.Data), e.blockSize)
		}
	}
	for _, h := range heads {
		copy(e.heads[h.StrandID], h.Data)
	}
	e.next = next
	return nil
}

// WriteCost returns the paper's write penalty α+1: every logical write
// stores one data block plus α parities (§IV.B.2 "Never-ending Stripe").
func (e *Encoder) WriteCost() int { return e.lat.Params().Alpha + 1 }
