// Package writeperf analyses the write-performance behaviour of §V.B and
// Fig 10: how the choice of s and p affects full-writes and sealed buckets.
//
// A sealed bucket is a data block together with the α parities its
// entanglement created. The encoder writes the lattice column by column
// (one column of s data blocks per time step); every entanglement consumes
// the current head parity of each of the block's α strands. The question
// Fig 10 answers is how long those head parities must wait in memory
// before they are consumed:
//
//   - On horizontal strands and in the interior of helical strands the
//     head computed in column t is consumed in column t+1 — age 1.
//   - At the lattice wraps (top nodes on RH strands, bottom nodes on LH
//     strands) the consuming node lives p−s+1 columns ahead, so the head
//     ages p−s+1 columns before the entanglement can use it.
//
// When s = p every head is consumed exactly one column after it is
// produced: all the inputs of a full column are available from the
// immediately preceding step and the whole column can be entangled as one
// parallel full-write, sealing s buckets per step. When p > s the wrap
// inputs are stale heads that have waited p−s+1 steps; a writer that only
// batches fresh inputs can either do full-writes for the central nodes
// only or write the top/bottom buckets partially and seal them later —
// exactly the two options of the Fig 10 caption.
//
// All quantities here are derived by walking the lattice geometry, not
// from closed forms, so they remain valid for any future rule changes.
package writeperf

import (
	"fmt"

	"aecodes/internal/lattice"
)

// Analysis summarises the head-age structure of a code setting.
type Analysis struct {
	Params lattice.Params
	// MaxHeadAge is the maximum number of columns any strand-head parity
	// waits before consumption: 1 when s = p (perfect pipeline), p−s+1
	// otherwise.
	MaxHeadAge int
	// AgeByClass maps each strand class to the maximum head age it
	// exhibits.
	AgeByClass map[lattice.Class]int
	// HeadsInMemory is the broker's steady-state memory footprint in
	// blocks: one head per strand, s+(α−1)·p (§IV.A).
	HeadsInMemory int
}

// FullWriteParallel reports whether entire columns can be entangled as one
// parallel full-write from fresh heads only — the s = p optimisation.
func (a Analysis) FullWriteParallel() bool { return a.MaxHeadAge <= 1 }

// Analyze measures head ages for the given parameters by walking every
// strand across several revolutions.
func Analyze(params lattice.Params) (Analysis, error) {
	lat, err := lattice.New(params)
	if err != nil {
		return Analysis{}, err
	}
	a := Analysis{
		Params:        params,
		AgeByClass:    make(map[lattice.Class]int, params.Alpha),
		HeadsInMemory: params.StrandCount(),
	}
	// Walk forward from every node of a full period and measure the column
	// distance to the consumer of each produced head.
	start := 4*params.S*params.P + 1
	if params.Alpha == 1 {
		start = 5
	}
	span := params.S * params.P
	if span == 0 {
		span = params.S
	}
	for _, class := range lat.Classes() {
		maxAge := 0
		for i := start; i < start+span; i++ {
			j, err := lat.Forward(class, i)
			if err != nil {
				return Analysis{}, err
			}
			age := col(params.S, j) - col(params.S, i)
			if age > maxAge {
				maxAge = age
			}
		}
		a.AgeByClass[class] = maxAge
		if maxAge > a.MaxHeadAge {
			a.MaxHeadAge = maxAge
		}
	}
	return a, nil
}

// col returns the 0-based column of position i on an s-row lattice.
func col(s, i int) int { return (i - 1) / s }

// ColumnSchedule describes what a fresh-input column writer achieves in
// one time step: how many of the column's s buckets seal as part of the
// full-write (all α inputs are fresh, age-1 heads) and how many remain
// partial (some input is a stale wrap head), with the count of fresh
// parities available to the partial buckets.
type ColumnSchedule struct {
	// Sealed is the number of buckets sealed by the full-write.
	Sealed int
	// Partial is the number of buckets left partially written.
	Partial int
	// FreshParities is the total number of parities computable from
	// fresh heads across the partial buckets (the small numbers drawn
	// inside the Fig 10 buckets).
	FreshParities int
}

// Schedule computes the steady-state per-column write schedule. For s = p
// every bucket seals (Sealed = s); for p > s the top and bottom nodes wait
// on stale wrap heads.
func Schedule(params lattice.Params) (ColumnSchedule, error) {
	lat, err := lattice.New(params)
	if err != nil {
		return ColumnSchedule{}, err
	}
	start := 4*params.S*params.P + 1
	if params.Alpha == 1 {
		start = 5
	}
	var sched ColumnSchedule
	for r := 0; r < params.S; r++ {
		i := start + r
		fresh := 0
		for _, class := range lat.Classes() {
			h, err := lat.Backward(class, i)
			if err != nil {
				return ColumnSchedule{}, err
			}
			if col(params.S, i)-col(params.S, h) <= 1 {
				fresh++
			}
		}
		if fresh == params.Alpha {
			sched.Sealed++
		} else {
			sched.Partial++
			sched.FreshParities += fresh
		}
	}
	return sched, nil
}

// MemoryForFullWrite returns the number of parity blocks the broker keeps
// in memory to seal a window of w columns — O(N) in the number of parities
// computed in the full-write (§V.B): the strand heads plus the α·s
// parities produced per column.
func MemoryForFullWrite(params lattice.Params, w int) (int, error) {
	if err := params.Validate(); err != nil {
		return 0, err
	}
	if w < 1 {
		return 0, fmt.Errorf("writeperf: window must be >= 1, got %d", w)
	}
	return params.StrandCount() + w*params.Alpha*params.S, nil
}
