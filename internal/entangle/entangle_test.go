package entangle

import (
	"bytes"
	"math/rand"
	"testing"

	"aecodes/internal/lattice"
	"aecodes/internal/xorblock"
)

// buildSystem encodes n random data blocks with the given parameters and
// returns the populated store plus the original data for reference.
func buildSystem(t *testing.T, params lattice.Params, n, blockSize int, seed int64) (*MemoryStore, [][]byte) {
	t.Helper()
	enc, err := NewEncoder(params, blockSize)
	if err != nil {
		t.Fatalf("NewEncoder: %v", err)
	}
	rng := rand.New(rand.NewSource(seed))
	store := NewMemoryStore(blockSize)
	originals := make([][]byte, n+1) // 1-based
	for i := 1; i <= n; i++ {
		data := make([]byte, blockSize)
		rng.Read(data)
		originals[i] = data
		ent, err := enc.Entangle(data)
		if err != nil {
			t.Fatalf("Entangle(%d): %v", i, err)
		}
		if ent.Index != i {
			t.Fatalf("Entangle assigned index %d, want %d", ent.Index, i)
		}
		if err := store.PutData(bg, i, data); err != nil {
			t.Fatalf("PutData(%d): %v", i, err)
		}
		for _, p := range ent.Parities {
			if !p.Stored {
				continue
			}
			if err := store.PutParity(bg, p.Edge, p.Data); err != nil {
				t.Fatalf("PutParity(%v): %v", p.Edge, err)
			}
		}
	}
	return store, originals
}

func TestNewEncoderValidation(t *testing.T) {
	if _, err := NewEncoder(lattice.Params{Alpha: 3, S: 5, P: 2}, 64); err == nil {
		t.Error("NewEncoder accepted deformed lattice")
	}
	if _, err := NewEncoder(lattice.Params{Alpha: 2, S: 2, P: 5}, 0); err == nil {
		t.Error("NewEncoder accepted zero block size")
	}
	if _, err := NewEncoder(lattice.Params{Alpha: 2, S: 2, P: 5}, -8); err == nil {
		t.Error("NewEncoder accepted negative block size")
	}
}

func TestEntangleProducesAlphaParities(t *testing.T) {
	for _, params := range []lattice.Params{
		{Alpha: 1, S: 1, P: 0},
		{Alpha: 2, S: 2, P: 5},
		{Alpha: 3, S: 2, P: 5},
		{Alpha: 3, S: 5, P: 5},
	} {
		t.Run(params.String(), func(t *testing.T) {
			enc, err := NewEncoder(params, 32)
			if err != nil {
				t.Fatal(err)
			}
			data := bytes.Repeat([]byte{0xAB}, 32)
			ent, err := enc.Entangle(data)
			if err != nil {
				t.Fatal(err)
			}
			if len(ent.Parities) != params.Alpha {
				t.Errorf("got %d parities, want α=%d", len(ent.Parities), params.Alpha)
			}
			if enc.WriteCost() != params.Alpha+1 {
				t.Errorf("WriteCost = %d, want %d", enc.WriteCost(), params.Alpha+1)
			}
		})
	}
}

func TestEntangleRejectsWrongSize(t *testing.T) {
	enc, err := NewEncoder(lattice.Params{Alpha: 2, S: 1, P: 1}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := enc.Entangle(make([]byte, 8)); err == nil {
		t.Error("Entangle accepted short block")
	}
	if _, err := enc.Entangle(make([]byte, 32)); err == nil {
		t.Error("Entangle accepted long block")
	}
}

// TestEncodingIdentity checks p_{i,j} = d_i XOR p_{h,i} for every parity the
// encoder emits, by reconstructing the strand-head sequence independently.
func TestEncodingIdentity(t *testing.T) {
	params := lattice.Params{Alpha: 3, S: 2, P: 5}
	const n, blockSize = 200, 24
	lat, err := lattice.New(params)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewEncoder(params, blockSize)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))

	// Independent bookkeeping: parityAt[edge] = expected content.
	type ek struct {
		class       lattice.Class
		left, right int
	}
	expected := make(map[ek][]byte)
	parityOf := func(e lattice.Edge) []byte {
		if e.IsVirtual() {
			return make([]byte, blockSize)
		}
		b, ok := expected[ek{e.Class, e.Left, e.Right}]
		if !ok {
			t.Fatalf("missing expected parity %v", e)
		}
		return b
	}

	for i := 1; i <= n; i++ {
		data := make([]byte, blockSize)
		rng.Read(data)
		ent, err := enc.Entangle(data)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range ent.Parities {
			in, err := lat.InEdge(p.Edge.Class, i)
			if err != nil {
				t.Fatal(err)
			}
			want, err := xorblock.Xor(data, parityOf(in))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(p.Data, want) {
				t.Fatalf("node %d class %v: parity %v does not satisfy p=d XOR p_in",
					i, p.Edge.Class, p.Edge)
			}
			expected[ek{p.Edge.Class, p.Edge.Left, p.Edge.Right}] = want
		}
	}
}

func TestHeadsRestoreResumesEncoding(t *testing.T) {
	params := lattice.Params{Alpha: 3, S: 5, P: 5}
	const blockSize = 16
	rng := rand.New(rand.NewSource(42))
	blocks := make([][]byte, 60)
	for i := range blocks {
		blocks[i] = make([]byte, blockSize)
		rng.Read(blocks[i])
	}

	// Reference: encode everything in one encoder.
	ref, err := NewEncoder(params, blockSize)
	if err != nil {
		t.Fatal(err)
	}
	var refParities [][]Parity
	for _, b := range blocks {
		ent, err := ref.Entangle(b)
		if err != nil {
			t.Fatal(err)
		}
		refParities = append(refParities, ent.Parities)
	}

	// Crash after 25 blocks, snapshot, resume in a new encoder (§IV.A).
	first, err := NewEncoder(params, blockSize)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks[:25] {
		if _, err := first.Entangle(b); err != nil {
			t.Fatal(err)
		}
	}
	next, heads := first.Heads()
	if next != 26 {
		t.Fatalf("Heads next = %d, want 26", next)
	}
	if len(heads) != params.StrandCount() {
		t.Fatalf("Heads returned %d strands, want %d", len(heads), params.StrandCount())
	}

	second, err := NewEncoder(params, blockSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := second.RestoreHeads(next, heads); err != nil {
		t.Fatalf("RestoreHeads: %v", err)
	}
	for bi, b := range blocks[25:] {
		ent, err := second.Entangle(b)
		if err != nil {
			t.Fatal(err)
		}
		want := refParities[25+bi]
		for pi := range ent.Parities {
			if ent.Parities[pi].Edge != want[pi].Edge {
				t.Fatalf("block %d parity %d edge = %v, want %v",
					26+bi, pi, ent.Parities[pi].Edge, want[pi].Edge)
			}
			if !bytes.Equal(ent.Parities[pi].Data, want[pi].Data) {
				t.Fatalf("block %d parity %d content diverged after restore", 26+bi, pi)
			}
		}
	}
}

func TestRestoreHeadsValidation(t *testing.T) {
	enc, err := NewEncoder(lattice.Params{Alpha: 2, S: 2, P: 3}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.RestoreHeads(0, nil); err == nil {
		t.Error("RestoreHeads accepted next=0")
	}
	if err := enc.RestoreHeads(1, []StrandHead{{StrandID: 99, Data: make([]byte, 8)}}); err == nil {
		t.Error("RestoreHeads accepted out-of-range strand id")
	}
	if err := enc.RestoreHeads(1, []StrandHead{{StrandID: 0, Data: make([]byte, 4)}}); err == nil {
		t.Error("RestoreHeads accepted wrong-size head")
	}
}

func TestPuncturing(t *testing.T) {
	params := lattice.Params{Alpha: 3, S: 2, P: 5}
	enc, err := NewEncoder(params, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Puncture every LH parity.
	enc.SetPuncture(func(e lattice.Edge) bool { return e.Class != lattice.LeftHanded })
	data := make([]byte, 16)
	ent, err := enc.Entangle(data)
	if err != nil {
		t.Fatal(err)
	}
	stored, punctured := 0, 0
	for _, p := range ent.Parities {
		if p.Stored {
			stored++
		} else {
			punctured++
			if p.Edge.Class != lattice.LeftHanded {
				t.Errorf("punctured %v, policy only targets LH", p.Edge)
			}
		}
	}
	if stored != 2 || punctured != 1 {
		t.Errorf("stored=%d punctured=%d, want 2/1", stored, punctured)
	}
	// Punctured parities must still advance the strand: the next LH parity
	// on the same strand must incorporate the punctured content (identity
	// holds even though the block was not stored).
	enc.SetPuncture(nil)
	ent2, err := enc.Entangle(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(ent2.Parities) != 3 {
		t.Fatalf("second entanglement has %d parities", len(ent2.Parities))
	}
	for _, p := range ent2.Parities {
		if !p.Stored {
			t.Errorf("nil policy punctured %v", p.Edge)
		}
	}
}

func TestMemoryStoreVirtualEdges(t *testing.T) {
	store := NewMemoryStore(8)
	b, ok := store.Parity(lattice.Edge{Class: lattice.Horizontal, Left: -3, Right: 2})
	if !ok {
		t.Fatal("virtual edge unavailable")
	}
	if !xorblock.IsZero(b) {
		t.Error("virtual edge is non-zero")
	}
	err := store.PutParity(bg, lattice.Edge{Class: lattice.Horizontal, Left: 0, Right: 1}, make([]byte, 8))
	if err == nil {
		t.Error("PutParity accepted a virtual edge")
	}
}

func TestMemoryStoreLoseAndRestore(t *testing.T) {
	store := NewMemoryStore(4)
	if err := store.PutData(bg, 1, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Data(1); !ok {
		t.Fatal("fresh block unavailable")
	}
	store.LoseData(1)
	if _, ok := store.Data(1); ok {
		t.Fatal("lost block still available")
	}
	if got := store.MissingData(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("MissingData = %v, want [1]", got)
	}
	if err := store.PutData(bg, 1, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Data(1); !ok {
		t.Fatal("restored block unavailable")
	}
	if got := store.MissingData(); len(got) != 0 {
		t.Fatalf("MissingData after restore = %v, want empty", got)
	}

	// Losing a block never stored is a no-op.
	store.LoseData(99)
	if got := store.MissingData(); len(got) != 0 {
		t.Fatalf("MissingData after no-op lose = %v", got)
	}
}

func TestMemoryStoreValidation(t *testing.T) {
	store := NewMemoryStore(4)
	if err := store.PutData(bg, 0, make([]byte, 4)); err == nil {
		t.Error("PutData accepted position 0")
	}
	if err := store.PutData(bg, 1, make([]byte, 3)); err == nil {
		t.Error("PutData accepted wrong size")
	}
	e := lattice.Edge{Class: lattice.Horizontal, Left: 1, Right: 2}
	if err := store.PutParity(bg, e, make([]byte, 5)); err == nil {
		t.Error("PutParity accepted wrong size")
	}
	if err := store.CorruptData(1, make([]byte, 4)); err == nil {
		t.Error("CorruptData succeeded on absent block")
	}
}

func TestStoreCounts(t *testing.T) {
	params := lattice.Params{Alpha: 2, S: 2, P: 5}
	store, _ := buildSystem(t, params, 100, 8, 1)
	if store.DataCount() != 100 {
		t.Errorf("DataCount = %d, want 100", store.DataCount())
	}
	// α parities per data block, every one stored.
	if store.ParityCount() != 200 {
		t.Errorf("ParityCount = %d, want 200", store.ParityCount())
	}
}
