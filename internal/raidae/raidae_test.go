package raidae

import (
	"testing"

	"aecodes/internal/lattice"
)

func TestNewRAID5Validation(t *testing.T) {
	if _, err := NewRAID5(1); err == nil {
		t.Error("accepted k=1")
	}
	r, err := NewRAID5(6)
	if err != nil {
		t.Fatal(err)
	}
	if r.String() != "RAID5(6+1)" {
		t.Errorf("String = %q", r.String())
	}
}

func TestRAID5Costs(t *testing.T) {
	r, err := NewRAID5(6)
	if err != nil {
		t.Fatal(err)
	}
	if r.SmallWriteIOs() != 4 {
		t.Errorf("SmallWriteIOs = %d, want 4", r.SmallWriteIOs())
	}
	if r.DegradedReadIOs() != 6 {
		t.Errorf("DegradedReadIOs = %d, want k=6", r.DegradedReadIOs())
	}
	if r.FaultTolerance() != 1 {
		t.Errorf("FaultTolerance = %d, want 1", r.FaultTolerance())
	}
	// §IV.B.2: "the new array 7+1 disk RAID5 requires re-encoding
	// parities" — every stripe.
	if got := r.ReencodeOnGrow(100_000); got != 100_000 {
		t.Errorf("ReencodeOnGrow = %d, want all stripes", got)
	}
}

func TestNewArrayAEValidation(t *testing.T) {
	params := lattice.Params{Alpha: 3, S: 2, P: 5}
	if _, err := NewArrayAE(params, 3); err == nil {
		t.Error("accepted fewer than α+1 disks")
	}
	if _, err := NewArrayAE(lattice.Params{Alpha: 5}, 10); err == nil {
		t.Error("accepted invalid params")
	}
	a, err := NewArrayAE(params, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != "RAID-AE(3,2,5)x8" {
		t.Errorf("String = %q", a.String())
	}
}

func TestArrayAECosts(t *testing.T) {
	a, err := NewArrayAE(lattice.Params{Alpha: 3, S: 2, P: 5}, 8)
	if err != nil {
		t.Fatal(err)
	}
	// §IV.B.2: "the write penalty is α+1".
	if a.SmallWriteIOs() != 4 {
		t.Errorf("SmallWriteIOs = %d, want α+1=4", a.SmallWriteIOs())
	}
	// Single failures always cost two blocks, and there are α direct paths.
	if a.DegradedReadIOs() != 2 {
		t.Errorf("DegradedReadIOs = %d, want 2", a.DegradedReadIOs())
	}
	if a.DegradedReadPaths() != 3 {
		t.Errorf("DegradedReadPaths = %d, want α=3", a.DegradedReadPaths())
	}
	// Never-ending stripe: growth re-encodes nothing.
	if got := a.ReencodeOnGrow(1_000_000); got != 0 {
		t.Errorf("ReencodeOnGrow = %d, want 0", got)
	}
}

func TestGrow(t *testing.T) {
	a, err := NewArrayAE(lattice.Params{Alpha: 2, S: 2, P: 5}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Grow(4); err != nil {
		t.Fatal(err)
	}
	if a.Disks() != 10 {
		t.Errorf("Disks = %d, want 10", a.Disks())
	}
	if err := a.Grow(-1); err == nil {
		t.Error("accepted negative growth")
	}
}

func TestRaiseAlpha(t *testing.T) {
	a, err := NewArrayAE(lattice.Params{Alpha: 2, S: 2, P: 5}, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := a.RaiseAlpha(3)
	if err != nil {
		t.Fatal(err)
	}
	if b.SmallWriteIOs() != 4 {
		t.Errorf("raised array write cost = %d, want 4", b.SmallWriteIOs())
	}
	if b.DegradedReadPaths() != 3 {
		t.Errorf("raised array paths = %d, want 3", b.DegradedReadPaths())
	}
	if _, err := a.RaiseAlpha(1); err == nil {
		t.Error("accepted lowering α")
	}
	// From single entanglement, raising α must pick helical strands.
	single, err := NewArrayAE(lattice.Params{Alpha: 1, S: 1, P: 0}, 4)
	if err != nil {
		t.Fatal(err)
	}
	double, err := single.RaiseAlpha(2)
	if err != nil {
		t.Fatal(err)
	}
	if double.DegradedReadPaths() != 2 {
		t.Errorf("raised single-entanglement paths = %d, want 2", double.DegradedReadPaths())
	}
}

func TestCompare(t *testing.T) {
	rows, err := Compare(6, lattice.Params{Alpha: 3, S: 2, P: 5}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("Compare returned %d rows", len(rows))
	}
	r5, ae := rows[0], rows[1]
	if r5.ReencodeOnGrow == 0 {
		t.Error("RAID5 growth should re-encode")
	}
	if ae.ReencodeOnGrow != 0 {
		t.Error("RAID-AE growth should re-encode nothing")
	}
	if ae.DegradedReadIOs >= r5.DegradedReadIOs {
		t.Errorf("RAID-AE degraded read (%d) should beat RAID5 (%d)",
			ae.DegradedReadIOs, r5.DegradedReadIOs)
	}
	if _, err := Compare(0, lattice.Params{Alpha: 3, S: 2, P: 5}, 8); err == nil {
		t.Error("accepted k=0")
	}
	if _, err := Compare(6, lattice.Params{Alpha: 9}, 8); err == nil {
		t.Error("accepted bad params")
	}
}
