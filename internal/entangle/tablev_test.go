package entangle

import (
	"bytes"
	"testing"

	"aecodes/internal/lattice"
)

// TestTableVWalkthrough reproduces the paper's Table V scenario exactly:
// in an AE(3,5,5) lattice, block d26 and its six adjacent parities are
//
//	 i   j  type/strand  location  available  repaired
//	26  26  d            56        FALSE      TRUE
//	21  26  h             3        FALSE      TRUE
//	26  31  h            47        FALSE      FALSE
//	22  26  lh           12        FALSE      FALSE
//	26  35  lh           28        TRUE       –
//	25  26  rh           91        TRUE       –
//	26  32  rh           39        TRUE       –
//
// Locations 3, 12, 47 and 56 are unavailable; "Block d26 is repaired via
// RH strand's p-blocks" — the only complete pp-tuple is (p25,26, p26,32).
func TestTableVWalkthrough(t *testing.T) {
	params := lattice.Params{Alpha: 3, S: 5, P: 5}
	store, originals := buildSystem(t, params, 60, 16, 2605)
	r := mustRepairer(t, params)
	lat := r.Lattice()

	// Map Table V's unavailable locations onto the named blocks.
	store.LoseData(26)
	store.LoseParity(lattice.Edge{Class: lattice.Horizontal, Left: 21, Right: 26}) // loc 3
	store.LoseParity(lattice.Edge{Class: lattice.Horizontal, Left: 26, Right: 31}) // loc 47
	store.LoseParity(lattice.Edge{Class: lattice.LeftHanded, Left: 22, Right: 26}) // loc 12

	// The H tuple is fully gone and the LH tuple half gone; only the RH
	// tuple (p25,26, p26,32) is complete, so the repair must succeed and
	// must be the XOR of exactly those two blocks.
	p2526, ok := store.Parity(lattice.Edge{Class: lattice.RightHanded, Left: 25, Right: 26})
	if !ok {
		t.Fatal("p25,26 should be available (location 91)")
	}
	p2632, ok := store.Parity(lattice.Edge{Class: lattice.RightHanded, Left: 26, Right: 32})
	if !ok {
		t.Fatal("p26,32 should be available (location 39)")
	}
	want := make([]byte, len(p2526))
	for i := range want {
		want[i] = p2526[i] ^ p2632[i]
	}

	got, err := r.RepairData(bg, store, 26)
	if err != nil {
		t.Fatalf("RepairData(26): %v", err)
	}
	if !bytes.Equal(got, originals[26]) {
		t.Error("repaired d26 does not match the original")
	}
	if !bytes.Equal(got, want) {
		t.Error("repaired d26 is not XOR(p25,26, p26,32) — wrong strand used")
	}

	// Table III's parity-repair flow on the same lattice: regenerate
	// p21,26 from the dp-tuple (d21, p16,21) after d26 is restored.
	if err := store.PutData(bg, 26, got); err != nil {
		t.Fatal(err)
	}
	e2126 := lattice.Edge{Class: lattice.Horizontal, Left: 21, Right: 26}
	opts, err := lat.ParityOptions(e2126)
	if err != nil {
		t.Fatal(err)
	}
	if opts[0].Data != 21 || opts[0].Parity != (lattice.Edge{Class: lattice.Horizontal, Left: 16, Right: 21}) {
		t.Fatalf("Table III step 1 ids wrong: %+v", opts[0])
	}
	rebuilt, err := r.RepairParity(bg, store, e2126)
	if err != nil {
		t.Fatalf("RepairParity(p21,26): %v", err)
	}
	d21, ok := store.Data(21)
	if !ok {
		t.Fatal("d21 unavailable")
	}
	p1621, ok := store.Parity(lattice.Edge{Class: lattice.Horizontal, Left: 16, Right: 21})
	if !ok {
		t.Fatal("p16,21 unavailable")
	}
	wantPar := make([]byte, len(d21))
	for i := range wantPar {
		wantPar[i] = d21[i] ^ p1621[i]
	}
	if !bytes.Equal(rebuilt, wantPar) {
		t.Error("p21,26 is not XOR(d21, p16,21) — Table III flow broken")
	}
}
