package maintain

import (
	"context"
	"errors"

	"aecodes/internal/entangle"
	"aecodes/internal/segstore"
	"aecodes/internal/store"
)

// Scrubber is the store surface the scrub task walks; segstore.Store
// satisfies it.
type Scrubber interface {
	ScrubStep(after string, maxBytes int64) segstore.ScrubResult
}

// ScrubTask continuously CRC-verifies a segment store's records in key
// order, one bounded chunk per step, wrapping around forever. Corrupt
// records are dropped by the store itself, which makes them visible to
// missing-block enumeration — scrub findings feed straight into the
// healing task with no extra plumbing.
type ScrubTask struct {
	Store Scrubber
	// Chunk bounds one step's record bytes; <=0 defaults to 1 MiB.
	// It also bounds how long the store's write lock is held per step.
	Chunk int64
	// Limit, when set, charges each step's scanned bytes (debt model).
	Limit *Bucket

	// cursor resumes the key walk across steps (scheduler goroutine only).
	cursor string
}

// Name implements Task.
func (t *ScrubTask) Name() string { return "scrub" }

// RunOnce implements Task: verify one chunk, advance the cursor, charge
// the bucket for what was read.
func (t *ScrubTask) RunOnce(ctx context.Context) (Progress, error) {
	chunk := t.Chunk
	if chunk <= 0 {
		chunk = 1 << 20
	}
	if t.Limit != nil {
		// Admission: repay any outstanding debt before touching the store.
		if err := t.Limit.Acquire(ctx, 1, 0); err != nil {
			return Progress{}, err
		}
	}
	res := t.Store.ScrubStep(t.cursor, chunk)
	t.cursor = res.Next
	if t.Limit != nil && res.Scanned > 0 {
		if err := t.Limit.Acquire(ctx, res.Scanned, res.Bytes); err != nil {
			return Progress{}, err
		}
	}
	return Progress{
		Ops:   res.Scanned,
		Bytes: res.Bytes,
		Found: len(res.Corrupt),
		Idle:  res.Scanned == 0, // empty store: nothing to verify
	}, nil
}

// HealTarget is one healable lattice. cooperative.Broker satisfies it
// directly; NewStoreTarget adapts a repairer plus a local BlockStore.
type HealTarget interface {
	Health(ctx context.Context) (entangle.Health, error)
	Repair(ctx context.Context, opts entangle.Options) (entangle.Stats, error)
}

// NewStoreTarget adapts a repairer over a local BlockStore (typically
// segstore.OpenLattice's view) into a HealTarget. blocks is the
// lattice's data-block count, recorded in health probes.
func NewStoreTarget(rep *entangle.Repairer, st store.BlockStore, blocks int) HealTarget {
	return storeTarget{rep: rep, st: st, blocks: blocks}
}

type storeTarget struct {
	rep    *entangle.Repairer
	st     store.BlockStore
	blocks int
}

func (t storeTarget) Health(ctx context.Context) (entangle.Health, error) {
	return t.rep.Health(ctx, t.st, t.blocks)
}

func (t storeTarget) Repair(ctx context.Context, opts entangle.Options) (entangle.Stats, error) {
	return t.rep.Repair(ctx, t.st, opts)
}

// HealTask proactively repairs a lattice, most-fragile blocks first:
// each step probes health, picks the Batch most urgent targets
// (fewest intact repair tuples first), and repairs them through minimal
// local tuples (ScopeTuple) so bytes moved stay near two blocks per
// repaired block. If scoped repair cannot make progress but damage
// remains, the step falls back to one whole-lattice pass — rounds
// propagate repairs that single tuples cannot reach — still under the
// same rate limit.
type HealTask struct {
	// Open resolves the lattice to heal at step time (it may not exist
	// yet, or its shape may change across re-archives). An error
	// wrapping store.ErrNotFound means "nothing to heal": the task stays
	// idle without logging.
	Open func(ctx context.Context) (HealTarget, error)
	// Opts is the template for repair calls; Scope and Targets are
	// overwritten per step, everything else (RateLimit, Workers, ...)
	// passes through.
	Opts entangle.Options
	// Batch caps targets per step; <=0 defaults to 32.
	Batch int
}

// Name implements Task.
func (t *HealTask) Name() string { return "heal" }

// RunOnce implements Task.
func (t *HealTask) RunOnce(ctx context.Context) (Progress, error) {
	target, err := t.Open(ctx)
	if errors.Is(err, store.ErrNotFound) {
		return Progress{Idle: true}, nil
	}
	if err != nil {
		return Progress{}, err
	}
	h, err := target.Health(ctx)
	if err != nil {
		return Progress{}, err
	}
	if h.Healthy() {
		return Progress{Idle: true}, nil
	}
	batch := t.Batch
	if batch <= 0 {
		batch = 32
	}
	opts := t.Opts
	opts.Scope = entangle.ScopeTuple
	opts.Priority = entangle.PriorityBackground
	if urgent(h) {
		opts.Priority = entangle.PriorityUrgent
	}
	var targets []store.Ref
	for _, i := range h.FragileFirst() {
		if len(targets) >= batch {
			break
		}
		targets = append(targets, store.DataRef(i))
	}
	for _, e := range h.Missing.Parities {
		if len(targets) >= batch {
			break
		}
		targets = append(targets, store.ParityRef(e))
	}
	opts.Targets = targets
	stats, err := target.Repair(ctx, opts)
	found := h.MissingData() + h.MissingParities()
	repaired := stats.DataRepaired + stats.ParityRepaired
	prog := Progress{Ops: repaired, Bytes: stats.BytesRead, Found: found, Repaired: repaired}
	if err != nil {
		return prog, err
	}
	if repaired == 0 {
		// Scoped tuples could not complete anything: one whole-lattice
		// pass propagates repairs across rounds. MaxRounds bounds the
		// step so the scheduler keeps interleaving other tasks.
		full := t.Opts
		full.Scope = entangle.ScopeLattice
		if full.MaxRounds <= 0 {
			full.MaxRounds = 4
		}
		fstats, ferr := target.Repair(ctx, full)
		prog.Bytes += fstats.BytesRead
		prog.Repaired += fstats.DataRepaired + fstats.ParityRepaired
		prog.Ops += fstats.DataRepaired + fstats.ParityRepaired
		if ferr != nil {
			return prog, ferr
		}
		if prog.Repaired == 0 {
			// Unrecoverable under current availability: back off instead
			// of spinning on the same damage.
			prog.Idle = true
		}
	}
	return prog, nil
}

// urgent reports whether some missing data block is down to at most one
// intact repair tuple — the health score's "nearly unrecoverable" band.
func urgent(h entangle.Health) bool {
	for _, n := range h.IntactTuples {
		if n <= 1 {
			return true
		}
	}
	return false
}

// Drainer is the control-plane surface the drain task drives;
// cluster.Manager satisfies it.
type Drainer interface {
	// DrainStep re-places up to max volumes off draining nodes and
	// reports how many moved. (0, nil) means nothing left to move.
	DrainStep(max int) (int, error)
}

// DrainTask migrates volumes off draining nodes, a bounded batch per
// step, through the cluster's existing re-placement path (repair
// regenerates the blocks on their new homes, exactly as after a node
// death — the drain just moves the routes ahead of failure).
type DrainTask struct {
	Mgr Drainer
	// Batch caps volume moves per step; <=0 defaults to 16.
	Batch int
	// Limit, when set, charges one op per moved volume.
	Limit *Bucket
}

// Name implements Task.
func (t *DrainTask) Name() string { return "drain" }

// RunOnce implements Task.
func (t *DrainTask) RunOnce(ctx context.Context) (Progress, error) {
	batch := t.Batch
	if batch <= 0 {
		batch = 16
	}
	if t.Limit != nil {
		if err := t.Limit.Acquire(ctx, 1, 0); err != nil {
			return Progress{}, err
		}
	}
	moved, err := t.Mgr.DrainStep(batch)
	if t.Limit != nil && moved > 0 {
		if aerr := t.Limit.Acquire(ctx, moved, 0); aerr != nil {
			return Progress{Ops: moved, Repaired: moved}, aerr
		}
	}
	prog := Progress{Ops: moved, Repaired: moved, Idle: moved == 0}
	return prog, err
}
