// Entangled mirror disk arrays (§IV.B.1): same hardware budget as
// mirroring — one parity drive per data drive — but the parity drives hold
// a simple entanglement chain instead of copies. A 5-year Monte Carlo
// compares mirroring with the open- and closed-chain layouts and
// reproduces the ≈90% / ≈98% loss-probability reductions of [16].
//
// Run with:
//
//	go run ./examples/entangledmirror
package main

import (
	"fmt"
	"log"

	"aecodes/internal/entmirror"
	"aecodes/internal/failure"
)

func main() {
	params := entmirror.Params{
		Pairs:   20, // 20 data + 20 parity drives
		Disks:   failure.DiskLifetimes{MTTF: 100_000, MTTR: 2_000},
		Horizon: entmirror.FiveYearHours,
		Trials:  8000,
		Seed:    42,
	}
	fmt.Printf("array: %d data + %d parity drives, MTTF %.0fh, rebuild %.0fh, 5-year mission, %d trials\n",
		params.Pairs, params.Pairs, params.Disks.MTTF, params.Disks.MTTR, params.Trials)

	results, err := entmirror.Compare(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s %12s %12s\n", "layout", "P(loss)", "vs mirror")
	for _, layout := range []entmirror.Layout{entmirror.Mirror, entmirror.OpenChain, entmirror.ClosedChain} {
		r := results[layout]
		if layout == entmirror.Mirror {
			fmt.Printf("%-14s %12.4f %12s\n", layout, r.LossProbability(), "—")
			continue
		}
		red, err := entmirror.Reduction(results, layout)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %12.4f %11.1f%%\n", layout, r.LossProbability(), red*100)
	}
	fmt.Println("\npaper recap: open chain ≈ −90%, closed chain ≈ −98% vs mirroring")

	fmt.Printf("\nextremity exposure (open chains): full partition %d bytes vs striping %d bytes\n",
		entmirror.ExtremityExposure(true, 4<<40, 4096),
		entmirror.ExtremityExposure(false, 4<<40, 4096))
}
