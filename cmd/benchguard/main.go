// Command benchguard compares an `aebench -json` run against a
// committed baseline and reports throughput regressions. It is the CI
// benchmark guard: shared runners are noisy, so by default it only
// warns (exit 0) and leaves failing the build to a human; -strict turns
// regressions into a non-zero exit for controlled environments.
//
// Usage:
//
//	aebench -exp encode -json > current.json
//	benchguard -baseline BENCH_2026-07-28.json -current current.json
//	benchguard -baseline BENCH_*.json -current current.json -tolerance 0.5 -github
//
// Measurements are matched by (experiment, name, gomaxprocs) — the
// parallelism rides in the key as "@procs=N", so a 2-proc run is never
// compared against a 1-proc baseline; when either file carries several
// samples for one key (e.g. repeated repair runs) the best wins, which
// filters scheduler noise in the direction that avoids false alarms.
// Throughput measurements (mb_s present) compare as MB/s, best =
// highest, and regress when the current value drops below baseline ×
// (1 - tolerance). Latency-style measurements (ns_per_op only — routing
// lookups, heartbeat round-trips, stat frames) compare as ns/op under a
// "(ns/op)"-suffixed key, best = lowest, and regress when the current
// value rises above baseline ÷ (1 - tolerance) — the same relative
// change, mirrored. Copy-budget measurements (bytes_block present)
// compare the same lower-is-better way under a "(bytes/block)" suffix;
// a zero baseline tolerates nothing — any copy appearing on a zero-copy
// path is a regression. Tail-latency measurements (p99_ns / p999_ns
// present) also compare lower-is-better, under "(p99 ns)" / "(p999 ns)"
// suffixes: an operation can hold its MB/s while its tail collapses,
// and the tail is guarded separately so the average cannot hide it.
// Entries present only in the current
// run are informational; entries present only in the baseline mean the
// guard is blind to a committed metric (e.g. a renamed experiment), so
// they are annotated and fail a -strict run. -github renders findings
// as GitHub Actions workflow annotations.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"aecodes/internal/benchfmt"
)

// finding is one compared measurement.
type finding struct {
	Key        string
	Baseline   float64
	Current    float64
	Regression bool
	// LowerBetter marks ns/op and bytes/block measurements, where a rise
	// regresses; MB/s measurements use the default higher-is-better
	// direction.
	LowerBetter bool
	// Unit names the measurement unit for reports.
	Unit string
}

// metric is one folded measurement with its comparison direction.
type metric struct {
	value       float64
	lowerBetter bool
	unit        string
}

// bestByKey folds a document into the best sample per (experiment,
// name, gomaxprocs): highest MB/s for throughput entries, lowest ns/op
// for latency-only entries, lowest bytes/block for copy-budget entries
// (the latter two keyed with a unit suffix so a unit change surfaces as
// a coverage hole, never a nonsense comparison). Results carry their
// GOMAXPROCS in the key as "@procs=N" — aebench -cpu measures several
// parallelism levels in one document, and a 2-proc run must never be
// compared against a 1-proc baseline; results without the per-result
// field (older documents) inherit the document-level value. Entries
// with no figure at all (wall-time-only records) are dropped.
func bestByKey(doc benchfmt.Document) map[string]metric {
	best := make(map[string]metric)
	for _, r := range doc.Results {
		key := r.Experiment + "/" + r.Name
		procs := r.GoMaxProcs
		if procs == 0 {
			procs = doc.GoMaxProcs
		}
		if procs > 0 {
			key += fmt.Sprintf("@procs=%d", procs)
		}
		if r.BytesBlock != nil {
			bk := key + " (bytes/block)"
			if m, ok := best[bk]; !ok || *r.BytesBlock < m.value {
				best[bk] = metric{value: *r.BytesBlock, lowerBetter: true, unit: "bytes/block"}
			}
		}
		// Tail latencies guard lower-is-better under their own unit
		// suffixes, alongside whatever throughput figure the result
		// carries: an op can keep its MB/s while its p99 collapses, and
		// that collapse must not hide behind the average.
		if r.P99Ns > 0 {
			pk := key + " (p99 ns)"
			if m, ok := best[pk]; !ok || r.P99Ns < m.value {
				best[pk] = metric{value: r.P99Ns, lowerBetter: true, unit: "p99 ns"}
			}
		}
		if r.P999Ns > 0 {
			pk := key + " (p999 ns)"
			if m, ok := best[pk]; !ok || r.P999Ns < m.value {
				best[pk] = metric{value: r.P999Ns, lowerBetter: true, unit: "p999 ns"}
			}
		}
		switch {
		case r.MBps > 0:
			if m, ok := best[key]; !ok || r.MBps > m.value {
				best[key] = metric{value: r.MBps, unit: "MB/s"}
			}
		case r.NsPerOp > 0:
			key += " (ns/op)"
			if m, ok := best[key]; !ok || r.NsPerOp < m.value {
				best[key] = metric{value: r.NsPerOp, lowerBetter: true, unit: "ns/op"}
			}
		}
	}
	return best
}

// regressed applies the tolerance in the metric's direction: MB/s may
// drop to baseline × (1 - tolerance), ns/op may rise to the mirrored
// baseline ÷ (1 - tolerance). A lower-is-better baseline of zero (a
// zero-copy bytes/block entry) gets no headroom at all: any copy
// appearing on a path that had none is a regression.
func regressed(baseline, current metric, tolerance float64) bool {
	if baseline.lowerBetter {
		return current.value > baseline.value/(1-tolerance)
	}
	return current.value < baseline.value*(1-tolerance)
}

// compare evaluates current against baseline with the given relative
// tolerance, returning per-key findings sorted by key plus the keys
// present on only one side.
func compare(baseline, current benchfmt.Document, tolerance float64) (findings []finding, onlyBaseline, onlyCurrent []string) {
	base := bestByKey(baseline)
	cur := bestByKey(current)
	for key, b := range base {
		c, ok := cur[key]
		if !ok {
			onlyBaseline = append(onlyBaseline, key)
			continue
		}
		findings = append(findings, finding{
			Key:         key,
			Baseline:    b.value,
			Current:     c.value,
			Regression:  regressed(b, c, tolerance),
			LowerBetter: b.lowerBetter,
			Unit:        b.unit,
		})
	}
	for key := range cur {
		if _, ok := base[key]; !ok {
			onlyCurrent = append(onlyCurrent, key)
		}
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].Key < findings[j].Key })
	sort.Strings(onlyBaseline)
	sort.Strings(onlyCurrent)
	return findings, onlyBaseline, onlyCurrent
}

func readDocument(path string) (benchfmt.Document, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return benchfmt.Document{}, err
	}
	var doc benchfmt.Document
	if err := json.Unmarshal(raw, &doc); err != nil {
		return benchfmt.Document{}, fmt.Errorf("parsing %s: %w", path, err)
	}
	return doc, nil
}

func main() {
	var (
		baselinePath = flag.String("baseline", "", "committed aebench -json baseline")
		currentPath  = flag.String("current", "", "fresh aebench -json run to check")
		tolerance    = flag.Float64("tolerance", 0.5, "allowed relative MB/s drop before a measurement counts as a regression")
		github       = flag.Bool("github", false, "emit GitHub Actions ::warning:: / ::error:: annotations")
		strict       = flag.Bool("strict", false, "exit 1 on regression instead of warning only")
	)
	flag.Parse()
	if *baselinePath == "" || *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -baseline and -current are required")
		os.Exit(2)
	}
	if *tolerance < 0 || *tolerance >= 1 {
		fmt.Fprintln(os.Stderr, "benchguard: -tolerance must be in [0, 1)")
		os.Exit(2)
	}
	baseline, err := readDocument(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	current, err := readDocument(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}

	findings, onlyBaseline, onlyCurrent := compare(baseline, current, *tolerance)
	regressions := 0
	fmt.Printf("benchguard: baseline %s (%s) vs current (%s), tolerance %.0f%%\n",
		*baselinePath, orUnknown(baseline.Timestamp), orUnknown(current.Timestamp), *tolerance*100)
	for _, f := range findings {
		verdict := "ok"
		if f.Regression {
			verdict = "REGRESSION"
			regressions++
		}
		delta := "n/a" // a zero baseline (zero-copy bytes/block) has no relative change
		if f.Baseline != 0 {
			delta = fmt.Sprintf("%+.1f%%", (f.Current/f.Baseline-1)*100)
		}
		fmt.Printf("  %-44s baseline %11.1f %s  current %11.1f %s  (%s)  %s\n",
			f.Key, f.Baseline, f.Unit, f.Current, f.Unit, delta, verdict)
		if f.Regression && *github {
			// Warn-only runs annotate as warnings; under -strict the job
			// will fail, so the annotation matches at error level.
			level := "warning"
			if *strict {
				level = "error"
			}
			worsened := "dropped"
			if f.LowerBetter {
				worsened = "rose"
			}
			fmt.Printf("::%s title=Benchmark regression::%s %s to %.1f %s (baseline %.1f %s, tolerance %.0f%%)\n",
				level, f.Key, worsened, f.Current, f.Unit, f.Baseline, f.Unit, *tolerance*100)
		}
	}
	// A baseline metric the current run never measured is a hole in the
	// guard (a renamed experiment would silently go unwatched), so it is
	// annotated like a regression and fails a -strict run.
	for _, key := range onlyBaseline {
		fmt.Printf("  %-44s in baseline only (experiment not run)\n", key)
		if *github {
			fmt.Printf("::warning title=Benchmark coverage::baseline metric %s was not measured by this run — regression guard is blind to it\n", key)
		}
	}
	for _, key := range onlyCurrent {
		fmt.Printf("  %-44s new measurement (no baseline)\n", key)
	}
	if regressions == 0 && len(onlyBaseline) == 0 {
		fmt.Println("benchguard: no regressions")
		return
	}
	fmt.Printf("benchguard: %d regression(s), %d unmeasured baseline metric(s)\n", regressions, len(onlyBaseline))
	if *strict {
		os.Exit(1)
	}
}

func orUnknown(s string) string {
	if s == "" {
		return "unknown"
	}
	return s
}
