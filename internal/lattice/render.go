package lattice

import (
	"fmt"
	"sort"
	"strings"
)

// RenderOptions configures the ASCII lattice renderer.
type RenderOptions struct {
	// From and Columns select the window: Columns lattice columns
	// starting at the column containing node From.
	From, Columns int
	// MarkNodes and MarkEdges are drawn highlighted ("[d26]" and "xx"),
	// which visualises erasure patterns on the grid.
	MarkNodes []int
	MarkEdges []Edge
}

// Render draws a Fig 4-style ASCII diagram of the lattice: nodes in an
// s×Columns grid with horizontal edges between them; helical edges are
// listed below the grid (drawing their wraps inline is hopeless in ASCII).
// Marked nodes render in brackets and marked horizontal edges as "xx".
func (l *Lattice) Render(opts RenderOptions) (string, error) {
	if opts.From < 1 {
		opts.From = 1
	}
	if opts.Columns < 1 {
		opts.Columns = 8
	}
	s := l.params.S
	startCol := l.Col(opts.From)

	markedNode := make(map[int]bool, len(opts.MarkNodes))
	for _, n := range opts.MarkNodes {
		markedNode[n] = true
	}
	markedEdge := make(map[Edge]bool, len(opts.MarkEdges))
	for _, e := range opts.MarkEdges {
		markedEdge[e] = true
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%v  columns %d..%d\n", l.params, startCol, startCol+opts.Columns-1)
	cellWidth := len(fmt.Sprintf("[%d]", (startCol+opts.Columns)*s+s))
	for r := 0; r < s; r++ {
		var row strings.Builder
		for c := startCol; c < startCol+opts.Columns; c++ {
			i := c*s + r + 1
			cell := fmt.Sprintf("%d", i)
			if markedNode[i] {
				cell = "[" + cell + "]"
			}
			row.WriteString(pad(cell, cellWidth))
			if c < startCol+opts.Columns-1 {
				h, err := l.OutEdge(Horizontal, i)
				if err != nil {
					return "", err
				}
				if markedEdge[h] {
					row.WriteString("xx")
				} else {
					row.WriteString("--")
				}
			}
		}
		sb.WriteString(strings.TrimRight(row.String(), " "))
		sb.WriteByte('\n')
	}

	// Helical edges in the window, one line per class.
	for _, class := range l.classes {
		if class == Horizontal {
			continue
		}
		var edges []Edge
		for c := startCol; c < startCol+opts.Columns; c++ {
			for r := 0; r < s; r++ {
				i := c*s + r + 1
				if i < 1 {
					continue
				}
				e, err := l.OutEdge(class, i)
				if err != nil {
					return "", err
				}
				edges = append(edges, e)
			}
		}
		sort.Slice(edges, func(a, b int) bool { return edges[a].Left < edges[b].Left })
		var parts []string
		for _, e := range edges {
			txt := fmt.Sprintf("%d-%d", e.Left, e.Right)
			if markedEdge[e] {
				txt = "[" + txt + "]"
			}
			parts = append(parts, txt)
		}
		fmt.Fprintf(&sb, "%-2s: %s\n", class, strings.Join(parts, " "))
	}
	return sb.String(), nil
}

// pad right-pads a cell to the given width.
func pad(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return s + strings.Repeat(" ", width-len(s))
}
