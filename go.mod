module aecodes

go 1.24
