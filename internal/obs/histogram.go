// Histogram: fixed-bucket log-scale latency distribution. 64 buckets
// at power-of-two boundaries cover the full int64 nanosecond range —
// sub-nanosecond to minutes and beyond — so every record is one
// bits.Len64 plus two atomic adds, with no configuration, no dynamic
// resizing, and snapshots from different processes always mergeable
// bucket-by-bucket.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the fixed bucket count. Bucket 0 holds zero values;
// bucket i (1 ≤ i < 63) holds v with 2^(i-1) ≤ v < 2^i; bucket 63 is
// the overflow bucket for v ≥ 2^62.
const NumBuckets = 64

// histShards is the shard count for histograms. Smaller than the
// counter shard count: a record touches two adjacent atomics (bucket
// and sum), so each shard is already line-private, and fewer shards
// keep the per-histogram footprint and snapshot cost down.
var histShards = func() int {
	n := numShards
	if n > 8 {
		n = 8
	}
	return n
}()

// histShard is one shard's bucket array plus running sum. Trailing pad
// keeps the next shard's first buckets off this shard's last line.
type histShard struct {
	counts [NumBuckets]atomic.Uint64
	sum    atomic.Int64
	_      [cacheLine - 8]byte
}

// A Histogram records int64 samples (by convention, nanoseconds) into
// log-scale buckets. Record is lock-free and allocation-free.
type Histogram struct {
	shards []histShard // fixed at construction; fields are individually atomic
}

func newHistogram() *Histogram { return &Histogram{shards: make([]histShard, histShards)} }

// NewHistogram returns a standalone histogram not attached to any
// registry — for benches and tests that want the recording machinery
// without a scope.
func NewHistogram() *Histogram { return newHistogram() }

// bucketIndex maps a sample to its bucket. Negative samples (clock
// steps; callers should not produce them) clamp to bucket 0.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	i := bits.Len64(uint64(v)) // v in [2^(i-1), 2^i)
	if i >= NumBuckets {
		i = NumBuckets - 1
	}
	return i
}

// bucketLo returns the inclusive lower bound of bucket i.
func bucketLo(i int) float64 {
	if i == 0 {
		return 0
	}
	return math.Ldexp(1, i-1) // 2^(i-1)
}

// bucketHi returns the exclusive upper bound of bucket i.
func bucketHi(i int) float64 {
	if i == 0 {
		return 1
	}
	return math.Ldexp(1, i) // 2^i
}

// Record adds one sample.
func (h *Histogram) Record(v int64) {
	sh := &h.shards[shardIndex()&(len(h.shards)-1)]
	sh.counts[bucketIndex(v)].Add(1)
	sh.sum.Add(v)
}

// Snapshot sums the shards into a mergeable value snapshot. Like
// Counter.Value, the cut is not atomic across shards.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Buckets = make([]uint64, NumBuckets)
	for i := range h.shards {
		sh := &h.shards[i]
		for b := 0; b < NumBuckets; b++ {
			n := sh.counts[b].Load()
			s.Buckets[b] += n
			s.Count += n
		}
		s.Sum += sh.sum.Load()
	}
	return s
}

// HistSnapshot is a point-in-time histogram value: bucket counts plus
// the exact sum of samples. Snapshots merge by addition, so rollups
// across goroutines, processes, or nodes lose nothing.
type HistSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     int64    `json:"sum"`
	Buckets []uint64 `json:"buckets,omitempty"`
}

// Merge adds other into s. Merging is commutative and associative:
// counts and sums are plain sums, and the bucket layout is fixed, so
// any merge order yields the same snapshot.
func (s *HistSnapshot) Merge(other HistSnapshot) {
	if s.Buckets == nil {
		s.Buckets = make([]uint64, NumBuckets)
	}
	for i, n := range other.Buckets {
		if i < len(s.Buckets) {
			s.Buckets[i] += n
		}
	}
	s.Count += other.Count
	s.Sum += other.Sum
}

// Mean reports the exact arithmetic mean of recorded samples (the sum
// is tracked exactly; only quantiles are bucket-resolution).
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile reports the q-th quantile (0 ≤ q ≤ 1) with linear
// interpolation inside the containing bucket: the rank is located in
// cumulative bucket counts, then positioned proportionally between the
// bucket's bounds. Exact when samples are uniform within a bucket;
// bounded by the bucket width (a factor of two) in the worst case.
func (s *HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count-1) // 0-based fractional rank
	var cum uint64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		// Bucket i covers 0-based ranks [cum, cum+n).
		if rank < float64(cum+n) {
			// Position within the bucket, interpolated across its
			// count: rank cum sits at the lower bound, rank cum+n-1
			// flush against the upper bound.
			frac := 0.0
			if n > 1 {
				frac = (rank - float64(cum)) / float64(n-1)
			}
			lo, hi := bucketLo(i), bucketHi(i)
			return lo + frac*(hi-1-lo)
		}
		cum += n
	}
	return bucketHi(NumBuckets - 1)
}

// P50, P90, P99 and P999 are the quantiles the repo's dashboards and
// bench guards care about.
func (s *HistSnapshot) P50() float64  { return s.Quantile(0.50) }
func (s *HistSnapshot) P90() float64  { return s.Quantile(0.90) }
func (s *HistSnapshot) P99() float64  { return s.Quantile(0.99) }
func (s *HistSnapshot) P999() float64 { return s.Quantile(0.999) }
