// Disaster recovery on a location-aware cluster: the §V.C experiment in
// miniature and with real block content. 10,000 blocks are entangled with
// AE(3,2,5) and spread over 100 locations; a disaster knocks out 30% of
// the locations; round-based repair regenerates everything reachable onto
// the surviving nodes.
//
// Run with:
//
//	go run ./examples/disaster
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"aecodes"
	"aecodes/internal/blockstore"
	"aecodes/internal/failure"
	"aecodes/internal/placement"
)

const (
	blockSize = 256
	locations = 100
	dataCount = 10_000
	disaster  = 0.30
)

func main() {
	ctx := context.Background()
	cluster, err := blockstore.NewCluster(locations)
	if err != nil {
		log.Fatal(err)
	}
	place, err := placement.NewKeyHash(locations)
	if err != nil {
		log.Fatal(err)
	}
	view, err := blockstore.NewLatticeView(cluster, blockSize, func(key string) int {
		// Repaired blocks must land on healthy nodes: probe from the
		// key's home location.
		loc := place.PlaceKey(key)
		for off := 0; off < locations; off++ {
			if cluster.Available((loc + off) % locations) {
				return (loc + off) % locations
			}
		}
		return loc
	})
	if err != nil {
		log.Fatal(err)
	}

	code, err := aecodes.New(aecodes.Params{Alpha: 3, S: 2, P: 5}, blockSize)
	if err != nil {
		log.Fatal(err)
	}

	// Entangle and place.
	rng := rand.New(rand.NewSource(11))
	buf := make([]byte, blockSize)
	for i := 1; i <= dataCount; i++ {
		rng.Read(buf)
		ent, err := code.Entangle(buf)
		if err != nil {
			log.Fatal(err)
		}
		if err := view.PutData(ctx, ent.Index, buf); err != nil {
			log.Fatal(err)
		}
		for _, p := range ent.Parities {
			if err := view.PutParity(ctx, p.Edge, p.Data); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("placed %d data + %d parity blocks over %d locations\n",
		dataCount, 3*dataCount, locations)

	// Disaster: 30% of locations become unavailable at once.
	d, err := failure.NewDisaster(rng, locations, disaster)
	if err != nil {
		log.Fatal(err)
	}
	for _, loc := range d.Failed {
		if err := cluster.SetAvailable(loc, false); err != nil {
			log.Fatal(err)
		}
	}
	missData := view.MissingData()
	missPar := view.MissingParities()
	fmt.Printf("disaster hit %d locations: %d data blocks and %d parities unavailable\n",
		len(d.Failed), len(missData), len(missPar))

	// Round-based repair regenerates everything onto surviving locations.
	stats, err := code.Repair(ctx, view, aecodes.RepairOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repair finished in %d rounds: %d data + %d parity blocks regenerated\n",
		stats.Rounds, stats.DataRepaired, stats.ParityRepaired)
	for _, rs := range stats.PerRound {
		fmt.Printf("  round %2d: %5d data  %5d parities\n",
			rs.Round, rs.DataRepaired, rs.ParityRepaired)
	}
	fmt.Printf("data loss: %d of %d blocks (%.4f%%)\n",
		stats.DataLoss(), dataCount, 100*float64(stats.DataLoss())/dataCount)
	if stats.DataLoss() == 0 {
		fmt.Println("every data block survived a 30% correlated disaster")
	}
}
