package main

import (
	"testing"

	"aecodes/internal/benchfmt"
)

func doc(results ...benchfmt.Result) benchfmt.Document {
	return benchfmt.Document{Results: results}
}

func TestCompareFlagsOnlyRealRegressions(t *testing.T) {
	baseline := doc(
		benchfmt.Result{Experiment: "encode", Name: "sequential", MBps: 2000},
		benchfmt.Result{Experiment: "encode", Name: "pipelined", MBps: 2800},
		benchfmt.Result{Experiment: "repair", Name: "workers=1", MBps: 1100},
	)
	current := doc(
		benchfmt.Result{Experiment: "encode", Name: "sequential", MBps: 1800}, // -10%: within tolerance
		benchfmt.Result{Experiment: "encode", Name: "pipelined", MBps: 900},   // -68%: regression
		benchfmt.Result{Experiment: "repair", Name: "workers=1", MBps: 1300},  // improvement
	)
	findings, onlyB, onlyC := compare(baseline, current, 0.5)
	if len(onlyB) != 0 || len(onlyC) != 0 {
		t.Fatalf("unmatched keys: %v / %v", onlyB, onlyC)
	}
	if len(findings) != 3 {
		t.Fatalf("got %d findings, want 3", len(findings))
	}
	byKey := map[string]bool{}
	for _, f := range findings {
		byKey[f.Key] = f.Regression
	}
	if byKey["encode/sequential"] {
		t.Error("a drop within tolerance was flagged")
	}
	if !byKey["encode/pipelined"] {
		t.Error("a 68% drop was not flagged at 50% tolerance")
	}
	if byKey["repair/workers=1"] {
		t.Error("an improvement was flagged")
	}
}

// TestCompareTakesBestSample pins that repeated measurements for one key
// (aebench records the repair experiment once per worker setting, and
// some settings repeat) fold to the best MB/s on both sides, so one
// noisy sample cannot fake or mask a regression.
func TestCompareTakesBestSample(t *testing.T) {
	baseline := doc(
		benchfmt.Result{Experiment: "repair", Name: "workers=1", MBps: 1100},
		benchfmt.Result{Experiment: "repair", Name: "workers=1", MBps: 1500},
	)
	current := doc(
		benchfmt.Result{Experiment: "repair", Name: "workers=1", MBps: 400},
		benchfmt.Result{Experiment: "repair", Name: "workers=1", MBps: 1400},
	)
	findings, _, _ := compare(baseline, current, 0.5)
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1", len(findings))
	}
	f := findings[0]
	if f.Baseline != 1500 || f.Current != 1400 {
		t.Fatalf("best-sample folding wrong: %+v", f)
	}
	if f.Regression {
		t.Error("1400 vs 1500 at 50% tolerance flagged as regression")
	}
}

// TestCompareIgnoresWallOnlyEntries pins that wall-time-only records
// (mb_s absent) never produce findings.
func TestCompareIgnoresWallOnlyEntries(t *testing.T) {
	baseline := doc(
		benchfmt.Result{Experiment: "encode", Name: "wall"},
		benchfmt.Result{Experiment: "encode", Name: "sequential", MBps: 2000},
	)
	current := doc(
		benchfmt.Result{Experiment: "encode", Name: "wall"},
	)
	findings, onlyB, onlyC := compare(baseline, current, 0.5)
	if len(findings) != 0 {
		t.Fatalf("wall-only entries compared: %+v", findings)
	}
	if len(onlyB) != 1 || onlyB[0] != "encode/sequential" {
		t.Fatalf("missing-measurement reporting wrong: %v", onlyB)
	}
	if len(onlyC) != 0 {
		t.Fatalf("phantom current keys: %v", onlyC)
	}
}

// TestCompareNsPerOpLowerIsBetter pins the latency comparison path:
// ns/op-only entries compare under a suffixed key in the mirrored
// direction — a rise regresses, a drop never does — at the same
// relative tolerance as throughput.
func TestCompareNsPerOpLowerIsBetter(t *testing.T) {
	baseline := doc(
		benchfmt.Result{Experiment: "cluster", Name: "route-lookup", NsPerOp: 100},
		benchfmt.Result{Experiment: "cluster", Name: "heartbeat", NsPerOp: 50000},
		benchfmt.Result{Experiment: "cluster", Name: "placement", NsPerOp: 4000},
	)
	current := doc(
		benchfmt.Result{Experiment: "cluster", Name: "route-lookup", NsPerOp: 150}, // +50%: within 1/(1-0.5) = 2×
		benchfmt.Result{Experiment: "cluster", Name: "heartbeat", NsPerOp: 150000}, // 3×: regression
		benchfmt.Result{Experiment: "cluster", Name: "placement", NsPerOp: 1000},   // big improvement
	)
	findings, onlyB, onlyC := compare(baseline, current, 0.5)
	if len(onlyB) != 0 || len(onlyC) != 0 {
		t.Fatalf("unmatched keys: %v / %v", onlyB, onlyC)
	}
	byKey := map[string]finding{}
	for _, f := range findings {
		if !f.LowerBetter || f.Unit != "ns/op" {
			t.Errorf("%s not compared as ns/op: %+v", f.Key, f)
		}
		byKey[f.Key] = f
	}
	if byKey["cluster/route-lookup (ns/op)"].Regression {
		t.Error("a rise within tolerance was flagged")
	}
	if !byKey["cluster/heartbeat (ns/op)"].Regression {
		t.Error("a 3× latency rise was not flagged at 50% tolerance")
	}
	if byKey["cluster/placement (ns/op)"].Regression {
		t.Error("a latency improvement was flagged")
	}
}

// TestCompareBestSampleNsPerOp pins that repeated ns/op samples fold to
// the LOWEST value on both sides — best-sample in the latency direction.
func TestCompareBestSampleNsPerOp(t *testing.T) {
	baseline := doc(
		benchfmt.Result{Experiment: "cluster", Name: "route-lookup", NsPerOp: 120},
		benchfmt.Result{Experiment: "cluster", Name: "route-lookup", NsPerOp: 80},
	)
	current := doc(
		benchfmt.Result{Experiment: "cluster", Name: "route-lookup", NsPerOp: 500},
		benchfmt.Result{Experiment: "cluster", Name: "route-lookup", NsPerOp: 90},
	)
	findings, _, _ := compare(baseline, current, 0.5)
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1", len(findings))
	}
	f := findings[0]
	if f.Baseline != 80 || f.Current != 90 {
		t.Fatalf("best-sample folding wrong for ns/op: %+v", f)
	}
	if f.Regression {
		t.Error("90 vs 80 ns/op at 50% tolerance flagged as regression")
	}
}

// TestCompareUnitChangeIsCoverageHole pins that a key switching units
// between runs surfaces as missing + new, never as a cross-unit
// comparison.
func TestCompareUnitChangeIsCoverageHole(t *testing.T) {
	baseline := doc(benchfmt.Result{Experiment: "transport", Name: "statmany", MBps: 900})
	current := doc(benchfmt.Result{Experiment: "transport", Name: "statmany", NsPerOp: 1200})
	findings, onlyB, onlyC := compare(baseline, current, 0.5)
	if len(findings) != 0 {
		t.Fatalf("cross-unit comparison produced findings: %+v", findings)
	}
	if len(onlyB) != 1 || onlyB[0] != "transport/statmany" {
		t.Fatalf("baseline MB/s key not reported missing: %v", onlyB)
	}
	if len(onlyC) != 1 || onlyC[0] != "transport/statmany (ns/op)" {
		t.Fatalf("current ns/op key not reported new: %v", onlyC)
	}
}

// TestCompareKeysByGoMaxProcs pins the like-for-like rule: results are
// matched per GOMAXPROCS, a result without the per-result field inherits
// the document level, and a parallelism level present on only one side
// is a coverage gap, never a cross-procs comparison.
func TestCompareKeysByGoMaxProcs(t *testing.T) {
	baseline := benchfmt.Document{
		GoMaxProcs: 1,
		Results:    []benchfmt.Result{{Experiment: "transport", Name: "putmany", MBps: 600}},
	}
	current := benchfmt.Document{
		GoMaxProcs: 2,
		Results: []benchfmt.Result{
			{Experiment: "transport", Name: "putmany", GoMaxProcs: 1, MBps: 900},
			{Experiment: "transport", Name: "putmany", GoMaxProcs: 2, MBps: 1500},
		},
	}
	findings, onlyB, onlyC := compare(baseline, current, 0.5)
	if len(findings) != 1 || findings[0].Key != "transport/putmany@procs=1" {
		t.Fatalf("procs=1 entries not matched like-for-like: %+v", findings)
	}
	if findings[0].Baseline != 600 || findings[0].Current != 900 {
		t.Fatalf("doc-level gomaxprocs fallback wrong: %+v", findings[0])
	}
	if len(onlyB) != 0 {
		t.Fatalf("phantom baseline keys: %v", onlyB)
	}
	if len(onlyC) != 1 || onlyC[0] != "transport/putmany@procs=2" {
		t.Fatalf("new parallelism level not reported: %v", onlyC)
	}
}

// TestCompareBytesBlockZeroTolerance pins the copy-budget guard: a
// zero-copy baseline (bytes/block = 0) tolerates no copies at all, while
// staying zero is never flagged.
func TestCompareBytesBlockZeroTolerance(t *testing.T) {
	zero, alsoZero, leaked := 0.0, 0.0, 64.0
	baseline := doc(benchfmt.Result{Experiment: "segstore", Name: "append", MBps: 200, BytesBlock: &zero})
	clean := doc(benchfmt.Result{Experiment: "segstore", Name: "append", MBps: 210, BytesBlock: &alsoZero})
	findings, _, _ := compare(baseline, clean, 0.5)
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want MB/s + bytes/block", len(findings))
	}
	for _, f := range findings {
		if f.Regression {
			t.Errorf("unchanged zero-copy path flagged: %+v", f)
		}
	}
	dirty := doc(benchfmt.Result{Experiment: "segstore", Name: "append", MBps: 210, BytesBlock: &leaked})
	findings, _, _ = compare(baseline, dirty, 0.5)
	var flagged bool
	for _, f := range findings {
		if f.Unit == "bytes/block" && f.Regression {
			flagged = true
		}
	}
	if !flagged {
		t.Error("a copy appearing on a zero-copy path was not flagged")
	}
}

// TestCompareP99LowerIsBetter pins the tail-latency guard: p99/p999
// ride under their own suffixed keys next to the same result's MB/s, a
// tail rise regresses even while throughput holds, and a baseline with
// tails that the current run never measured is a coverage hole.
func TestCompareP99LowerIsBetter(t *testing.T) {
	baseline := doc(benchfmt.Result{Experiment: "transport", Name: "putmany", MBps: 900, P99Ns: 1e6, P999Ns: 2e6})
	current := doc(benchfmt.Result{Experiment: "transport", Name: "putmany", MBps: 920, P99Ns: 5e6, P999Ns: 2.1e6})
	findings, onlyB, onlyC := compare(baseline, current, 0.5)
	if len(onlyB) != 0 || len(onlyC) != 0 {
		t.Fatalf("unmatched keys: %v / %v", onlyB, onlyC)
	}
	byKey := map[string]finding{}
	for _, f := range findings {
		byKey[f.Key] = f
	}
	if len(findings) != 3 {
		t.Fatalf("got %d findings, want MB/s + p99 + p999: %+v", len(findings), findings)
	}
	if byKey["transport/putmany"].Regression {
		t.Error("steady throughput flagged")
	}
	p99 := byKey["transport/putmany (p99 ns)"]
	if !p99.Regression || !p99.LowerBetter {
		t.Errorf("a 5x p99 rise at 50%% tolerance not flagged: %+v", p99)
	}
	if byKey["transport/putmany (p999 ns)"].Regression {
		t.Error("a p999 rise within tolerance was flagged")
	}

	// A current run without tail figures leaves the guard blind: the
	// suffixed keys must surface as baseline-only coverage holes.
	blind := doc(benchfmt.Result{Experiment: "transport", Name: "putmany", MBps: 920})
	_, onlyB, _ = compare(baseline, blind, 0.5)
	if len(onlyB) != 2 {
		t.Fatalf("missing tail measurements not reported as coverage holes: %v", onlyB)
	}
}

func TestCompareReportsNewMeasurements(t *testing.T) {
	baseline := doc(benchfmt.Result{Experiment: "encode", Name: "sequential", MBps: 2000})
	current := doc(
		benchfmt.Result{Experiment: "encode", Name: "sequential", MBps: 2100},
		benchfmt.Result{Experiment: "xor", Name: "kernel", MBps: 9000},
	)
	_, _, onlyC := compare(baseline, current, 0.5)
	if len(onlyC) != 1 || onlyC[0] != "xor/kernel" {
		t.Fatalf("new measurement not reported: %v", onlyC)
	}
}
