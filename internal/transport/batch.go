// Batch operations: OpPutMany and OpGetMany pack many blocks into the
// payload of one ordinary frame, so one request/response exchange moves a
// whole encode batch or repair round per storage node instead of one
// round-trip per block.
//
// Batch payload encoding (big endian, nested inside the normal frame):
//
//	putMany  := count(4) { keyLen(2) key dataLen(4) data }*
//	getManyQ := count(4) { keyLen(2) key }*
//	getManyR := count(4) { found(1) dataLen(4) data }*
//	statManyQ = getManyQ
//	statManyR := count(4) { held(1) }*
//
// count is capped at MaxBatchEntries and the whole payload at
// MaxPayloadLen (enforced by the framing layer); oversized or malformed
// batches earn a StatusError response, not a dropped connection.
package transport

import (
	"context"
	"encoding/binary"
	"fmt"
	"net"

	"aecodes/internal/store"
)

// MaxBatchEntries caps the number of blocks in one batch frame.
const MaxBatchEntries = 4096

// KV is one key/block pair of a PutMany batch — the repository-wide
// store.KV, so keyed backends and their adapters share one batch item
// type.
type KV = store.KV

// roundTripper is the request/response capability shared by Client and
// the pooled pipeConn, letting both reuse one batch-op implementation.
type roundTripper interface {
	roundTrip(ctx context.Context, op byte, key string, payload []byte) (byte, []byte, error)
	roundTripSegments(ctx context.Context, segs net.Buffers) (byte, []byte, error)
}

// PutMany stores all items in one round-trip. The whole batch goes out as
// one frame via vectored I/O — block contents are handed to the kernel in
// place, never copied into a contiguous payload. The server applies items
// in order and reports the first store error; earlier items may have been
// stored when an error is returned.
func (c *Client) PutMany(ctx context.Context, items []KV) error {
	return putMany(ctx, c, items)
}

func putMany(ctx context.Context, rt roundTripper, items []KV) error {
	segs, arena, err := putManySegments(items)
	if err != nil {
		return err
	}
	status, resp, err := rt.roundTripSegments(ctx, segs)
	// The write has completed (or failed) by the time the round-trip
	// returns, so the header arena can rejoin the frame pool either way.
	putBuf(arena)
	if err != nil {
		return err
	}
	return ackError(status, resp)
}

// putManySegments lays out an OpPutMany frame as scatter/gather segments:
// all headers live in one exactly-sized pooled arena, and every item's
// data slice is referenced in place. The arena never reallocates, so the
// returned segments stay valid; it is returned alongside them so the
// caller can recycle it once the frame has been written.
func putManySegments(items []KV) (net.Buffers, []byte, error) {
	if err := checkBatchCount(len(items)); err != nil {
		return nil, nil, err
	}
	payload := 4
	hdrSize := 1 + 2 + 4 + 4 // op, empty key, payload length, batch count
	for _, it := range items {
		if len(it.Key) > MaxKeyLen {
			return nil, nil, fmt.Errorf("transport: key too long (%d bytes)", len(it.Key))
		}
		payload += 2 + len(it.Key) + 4 + len(it.Data)
		hdrSize += 2 + len(it.Key) + 4
	}
	if payload > MaxPayloadLen {
		return nil, nil, fmt.Errorf("transport: batch payload too large (%d bytes)", payload)
	}
	arena := getBuf(hdrSize)[:0]
	segs := make(net.Buffers, 0, 1+2*len(items))
	mark := 0
	seal := func() {
		segs = append(segs, arena[mark:len(arena):len(arena)])
		mark = len(arena)
	}
	arena = append(arena, OpPutMany)
	arena = binary.BigEndian.AppendUint16(arena, 0)
	arena = binary.BigEndian.AppendUint32(arena, uint32(payload))
	arena = binary.BigEndian.AppendUint32(arena, uint32(len(items)))
	seal()
	for _, it := range items {
		arena = binary.BigEndian.AppendUint16(arena, uint16(len(it.Key)))
		arena = append(arena, it.Key...)
		arena = binary.BigEndian.AppendUint32(arena, uint32(len(it.Data)))
		seal()
		if len(it.Data) > 0 {
			segs = append(segs, it.Data)
		}
	}
	return segs, arena, nil
}

// GetMany fetches all keys in one round-trip. The result has one entry per
// key in order; missing blocks are nil (a present-but-empty block comes
// back as a non-nil empty slice). A missing block is not an error.
func (c *Client) GetMany(ctx context.Context, keys []string) ([][]byte, error) {
	return getMany(ctx, c, keys)
}

func getMany(ctx context.Context, rt roundTripper, keys []string) ([][]byte, error) {
	payload, err := encodeGetManyReq(keys)
	if err != nil {
		return nil, err
	}
	status, resp, err := rt.roundTrip(ctx, OpGetMany, "", payload)
	if err != nil {
		return nil, err
	}
	if status != StatusOK {
		return nil, remoteError(status, resp)
	}
	blocks, err := decodeGetManyResp(resp)
	if err != nil {
		return nil, err
	}
	if len(blocks) != len(keys) {
		return nil, fmt.Errorf("transport: got %d batch entries, want %d", len(blocks), len(keys))
	}
	return blocks, nil
}

// servePutMany handles one OpPutMany frame on the server: one
// PutBatchOwned call on a consume-safe store (the decoded items alias
// the pooled receive buffer, which serveConn recycles the moment the
// call returns), one PutBatch on a batch-native store, one Put per item
// otherwise. decodePutMany never copies block data in any case — the
// difference is only who owns the buffer afterwards.
func servePutMany(conn net.Conn, view connView, payload []byte) error {
	items, err := decodePutMany(payload)
	if err != nil {
		return writeResponse(conn, StatusError, []byte(err.Error()))
	}
	switch {
	case view.owned != nil:
		if perr := view.owned.PutBatchOwned(items); perr != nil {
			return writeResponse(conn, storeStatus(perr), []byte(perr.Error()))
		}
	case view.batch != nil:
		if perr := view.batch.PutBatch(items); perr != nil {
			return writeResponse(conn, storeStatus(perr), []byte(perr.Error()))
		}
	default:
		for _, it := range items {
			if perr := view.store.Put(it.Key, it.Data); perr != nil {
				return writeResponse(conn, storeStatus(perr), []byte(perr.Error()))
			}
		}
	}
	return writeResponse(conn, StatusOK, nil)
}

// serveGetMany handles one OpGetMany frame on the server. The response
// frame is written with vectored I/O so block contents are never copied
// into a contiguous response payload.
func serveGetMany(conn net.Conn, view connView, payload []byte) error {
	keys, err := decodeGetManyReq(payload)
	if err != nil {
		return writeResponse(conn, StatusError, []byte(err.Error()))
	}
	var blocks [][]byte
	if view.batch != nil {
		blocks = view.batch.GetBatch(keys)
	} else {
		blocks = make([][]byte, len(keys))
		for i, k := range keys {
			if b, ok := view.store.Get(k); ok {
				if b == nil {
					b = []byte{} // present-but-empty, distinct from missing
				}
				blocks[i] = b
			}
		}
	}
	respPayload := 4
	for _, b := range blocks {
		respPayload += 1 + 4 + len(b)
	}
	if respPayload > MaxPayloadLen {
		return writeResponse(conn, StatusError,
			[]byte(fmt.Sprintf("transport: batch payload too large (%d bytes)", respPayload)))
	}
	hdrSize := 1 + 4 + 4 + len(blocks)*(1+4)
	arena := getBuf(hdrSize)[:0]
	segs := make(net.Buffers, 0, 1+2*len(blocks))
	mark := 0
	seal := func() {
		segs = append(segs, arena[mark:len(arena):len(arena)])
		mark = len(arena)
	}
	arena = append(arena, StatusOK)
	arena = binary.BigEndian.AppendUint32(arena, uint32(respPayload))
	arena = binary.BigEndian.AppendUint32(arena, uint32(len(blocks)))
	seal()
	for _, b := range blocks {
		if b == nil {
			arena = append(arena, 0)
			arena = binary.BigEndian.AppendUint32(arena, 0)
			seal()
			continue
		}
		arena = append(arena, 1)
		arena = binary.BigEndian.AppendUint32(arena, uint32(len(b)))
		seal()
		if len(b) > 0 {
			segs = append(segs, b)
		}
	}
	_, err = segs.WriteTo(conn)
	putBuf(arena) // the vectored write has consumed the header segments
	return err
}

// serveStatMany handles one OpStatMany frame: the request is a getManyQ
// key list, the response statManyR — one held/not byte per key. A
// stat-capable store answers from its index; anything else falls back to
// fetching and discarding, which still keeps block contents off the
// wire.
func serveStatMany(conn net.Conn, view connView, payload []byte) error {
	keys, err := decodeGetManyReq(payload)
	if err != nil {
		return writeResponse(conn, StatusError, []byte(err.Error()))
	}
	held := make([]byte, len(keys))
	switch {
	case view.stat != nil:
		for i, n := range view.stat.StatBatch(keys) {
			if n >= 0 {
				held[i] = 1
			}
		}
	case view.batch != nil:
		for i, b := range view.batch.GetBatch(keys) {
			if b != nil {
				held[i] = 1
			}
		}
	default:
		for i, k := range keys {
			if _, ok := view.store.Get(k); ok {
				held[i] = 1
			}
		}
	}
	resp := make([]byte, 0, 4+len(held))
	resp = binary.BigEndian.AppendUint32(resp, uint32(len(held)))
	resp = append(resp, held...)
	return writeResponse(conn, StatusOK, resp)
}

// StatMany reports, in one round-trip, which keys the node holds: one
// entry per key in order. Presence travels as one flag byte per key —
// enumeration of a large lattice costs bytes proportional to the key
// list, never to the block contents.
func (c *Client) StatMany(ctx context.Context, keys []string) ([]bool, error) {
	return statMany(ctx, c, keys)
}

func statMany(ctx context.Context, rt roundTripper, keys []string) ([]bool, error) {
	payload, err := encodeGetManyReq(keys)
	if err != nil {
		return nil, err
	}
	status, resp, err := rt.roundTrip(ctx, OpStatMany, "", payload)
	if err != nil {
		return nil, err
	}
	if status != StatusOK {
		rerr := remoteError(status, resp)
		putBuf(resp)
		return nil, rerr
	}
	held, err := decodeStatManyResp(resp)
	// decodeStatManyResp copies the flags out, so the response frame can
	// rejoin the pool even on a decode error (the error text is formatted
	// from counts, not aliases).
	putBuf(resp)
	if err != nil {
		return nil, err
	}
	if len(held) != len(keys) {
		return nil, fmt.Errorf("transport: got %d stat entries, want %d", len(held), len(keys))
	}
	return held, nil
}

func decodeStatManyResp(payload []byte) ([]bool, error) {
	count, rest, err := batchHeader(payload)
	if err != nil {
		return nil, err
	}
	if len(rest) != count {
		return nil, fmt.Errorf("transport: stat batch carries %d flags, want %d", len(rest), count)
	}
	held := make([]bool, count)
	for i, f := range rest {
		switch f {
		case 0:
		case 1:
			held[i] = true
		default:
			return nil, fmt.Errorf("transport: bad held flag %d", f)
		}
	}
	return held, nil
}

func checkBatchCount(n int) error {
	if n > MaxBatchEntries {
		return fmt.Errorf("transport: batch of %d entries exceeds limit %d", n, MaxBatchEntries)
	}
	return nil
}

func decodePutMany(payload []byte) ([]KV, error) {
	count, rest, err := batchHeader(payload)
	if err != nil {
		return nil, err
	}
	items := make([]KV, 0, count)
	for n := 0; n < count; n++ {
		var key string
		key, rest, err = takeKey(rest)
		if err != nil {
			return nil, err
		}
		var data []byte
		data, rest, err = takeBlock(rest)
		if err != nil {
			return nil, err
		}
		items = append(items, KV{Key: key, Data: data})
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("transport: %d trailing bytes in batch", len(rest))
	}
	return items, nil
}

func encodeGetManyReq(keys []string) ([]byte, error) {
	if err := checkBatchCount(len(keys)); err != nil {
		return nil, err
	}
	size := 4
	for _, k := range keys {
		if len(k) > MaxKeyLen {
			return nil, fmt.Errorf("transport: key too long (%d bytes)", len(k))
		}
		size += 2 + len(k)
	}
	buf := make([]byte, 0, size)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(keys)))
	for _, k := range keys {
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(k)))
		buf = append(buf, k...)
	}
	return buf, nil
}

func decodeGetManyReq(payload []byte) ([]string, error) {
	count, rest, err := batchHeader(payload)
	if err != nil {
		return nil, err
	}
	keys := make([]string, 0, count)
	for n := 0; n < count; n++ {
		var key string
		key, rest, err = takeKey(rest)
		if err != nil {
			return nil, err
		}
		keys = append(keys, key)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("transport: %d trailing bytes in batch", len(rest))
	}
	return keys, nil
}

func decodeGetManyResp(payload []byte) ([][]byte, error) {
	count, rest, err := batchHeader(payload)
	if err != nil {
		return nil, err
	}
	blocks := make([][]byte, count)
	for n := 0; n < count; n++ {
		if len(rest) < 1 {
			return nil, fmt.Errorf("transport: truncated batch entry")
		}
		found := rest[0]
		rest = rest[1:]
		var data []byte
		data, rest, err = takeBlock(rest)
		if err != nil {
			return nil, err
		}
		switch found {
		case 0:
			if len(data) != 0 {
				return nil, fmt.Errorf("transport: missing batch entry carries %d bytes", len(data))
			}
		case 1:
			blocks[n] = data
		default:
			return nil, fmt.Errorf("transport: bad found flag %d", found)
		}
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("transport: %d trailing bytes in batch", len(rest))
	}
	return blocks, nil
}

func batchHeader(payload []byte) (int, []byte, error) {
	if len(payload) < 4 {
		return 0, nil, fmt.Errorf("transport: batch payload too short (%d bytes)", len(payload))
	}
	count := binary.BigEndian.Uint32(payload)
	if count > MaxBatchEntries {
		return 0, nil, fmt.Errorf("transport: batch of %d entries exceeds limit %d", count, MaxBatchEntries)
	}
	return int(count), payload[4:], nil
}

func takeKey(rest []byte) (string, []byte, error) {
	if len(rest) < 2 {
		return "", nil, fmt.Errorf("transport: truncated batch key length")
	}
	n := int(binary.BigEndian.Uint16(rest))
	rest = rest[2:]
	if n > MaxKeyLen {
		return "", nil, fmt.Errorf("transport: key length %d exceeds limit", n)
	}
	if len(rest) < n {
		return "", nil, fmt.Errorf("transport: truncated batch key")
	}
	return string(rest[:n]), rest[n:], nil
}

func takeBlock(rest []byte) ([]byte, []byte, error) {
	if len(rest) < 4 {
		return nil, nil, fmt.Errorf("transport: truncated batch block length")
	}
	n := binary.BigEndian.Uint32(rest)
	rest = rest[4:]
	if n > MaxPayloadLen {
		return nil, nil, fmt.Errorf("transport: block length %d exceeds limit", n)
	}
	if uint32(len(rest)) < n {
		return nil, nil, fmt.Errorf("transport: truncated batch block")
	}
	return rest[:n], rest[n:], nil
}
