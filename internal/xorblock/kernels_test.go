package xorblock

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// TestAllKernelsMatchGeneric runs every kernel the machine supports —
// not just the dispatched one — against the generic reference, over
// sizes straddling each kernel's chunk boundary (64, 128, 256) and
// unaligned base offsets.
func TestAllKernelsMatchGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sizes := []int{0, 1, 8, 63, 64, 65, 127, 128, 129, 255, 256, 257, 300, 511, 512, 1000, 4096, 4099}
	for _, k := range Kernels() {
		for _, size := range sizes {
			for _, offset := range []int{0, 1, 5} {
				a := make([]byte, size+offset)
				b := make([]byte, size+offset)
				rng.Read(a)
				rng.Read(b)
				av, bv := a[offset:], b[offset:]

				want := make([]byte, size)
				xorWordsGeneric(want, av, bv)
				got := make([]byte, size)
				if err := k.XorInto(got, av, bv); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("kernel %s XorInto size %d offset %d diverges from generic", k.Name(), size, offset)
				}

				for _, nsrc := range []int{1, 2, 3, 5, 9} {
					srcs := make([][]byte, nsrc)
					for i := range srcs {
						s := make([]byte, size+offset)
						rng.Read(s)
						srcs[i] = s[offset:]
					}
					wantM := make([]byte, size)
					copy(wantM, srcs[0])
					if nsrc > 1 {
						xorManyGeneric(wantM, srcs)
					}
					gotM := make([]byte, size)
					if err := k.XorManyInto(gotM, srcs...); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(gotM, wantM) {
						t.Fatalf("kernel %s XorManyInto size %d offset %d nsrc %d diverges", k.Name(), size, offset, nsrc)
					}

					// Aliased: dst == srcs[0], the in-place accumulate shape.
					aliased := make([]byte, size)
					copy(aliased, srcs[0])
					save := srcs[0]
					srcs[0] = aliased
					if err := k.XorManyInto(aliased, srcs...); err != nil {
						t.Fatal(err)
					}
					srcs[0] = save
					if !bytes.Equal(aliased, wantM) {
						t.Fatalf("kernel %s aliased XorManyInto size %d offset %d nsrc %d diverges", k.Name(), size, offset, nsrc)
					}
				}
			}
		}
	}
}

// TestKernelsListedAndActive pins the Kernels/Active API shape: generic
// is always present, names are unique, and the dispatched kernel is one
// of the listed rungs.
func TestKernelsListedAndActive(t *testing.T) {
	ks := Kernels()
	if len(ks) == 0 || ks[0].Name() != "generic" {
		t.Fatalf("Kernels() must start with generic, got %v", names(ks))
	}
	seen := map[string]bool{}
	for _, k := range ks {
		if seen[k.Name()] {
			t.Fatalf("duplicate kernel name %q in %v", k.Name(), names(ks))
		}
		seen[k.Name()] = true
	}
	if !seen[Active().Name()] {
		t.Fatalf("active kernel %q not in Kernels() %v", Active().Name(), names(ks))
	}
	if Active().Name() != kernelName {
		t.Fatalf("Active()=%q but kernelName=%q", Active().Name(), kernelName)
	}
}

func names(ks []Kernel) []string {
	out := make([]string, len(ks))
	for i, k := range ks {
		out[i] = k.Name()
	}
	return out
}

// BenchmarkKernels reports MB/s for every rung of the ladder side by
// side at the α=3 fan-in the encoder uses.
func BenchmarkKernels(b *testing.B) {
	const size = 64 << 10
	srcs := make([][]byte, 3)
	for i := range srcs {
		srcs[i] = make([]byte, size)
		rand.New(rand.NewSource(int64(i))).Read(srcs[i])
	}
	dst := make([]byte, size)
	for _, k := range Kernels() {
		b.Run(fmt.Sprintf("many3/%s", k.Name()), func(b *testing.B) {
			b.SetBytes(int64(size) * 3)
			for i := 0; i < b.N; i++ {
				k.many(dst, srcs)
			}
		})
	}
}
