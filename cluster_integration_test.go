package aecodes_test

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"aecodes/internal/cluster"
	"aecodes/internal/cooperative"
	"aecodes/internal/entangle"
	"aecodes/internal/lattice"
	"aecodes/internal/transport"
)

// clusterClock is a hand-advanced time source: node death in this test
// is a clock advance plus surviving heartbeats, never a sleep, so the
// test is deterministic under -race.
type clusterClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *clusterClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *clusterClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// clusterNode is one fleet member: a real TCP storage node plus its
// backing store and server handle (for killing it).
type clusterNode struct {
	id    string
	addr  string
	srv   *transport.Server
	store *transport.MemStore
}

// TestClusterEndToEnd is the fleet-scale integration test: one cluster
// manager and four storage nodes over real TCP. A broker with no node
// list at all — only the manager's address — backs up across multiple
// volumes on multiple nodes; then one node dies, the manager marks it
// dead, and cooperative repair re-routes through the refreshed table
// and regenerates the dead node's volumes on survivors.
func TestClusterEndToEnd(t *testing.T) {
	const (
		fleetSize    = 4
		n            = 40
		blockSize    = 64
		volumeBlocks = 4
		ttl          = 10 * time.Second
	)
	ctx := context.Background()
	clk := &clusterClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}

	// The manager, serving routes and heartbeats over real TCP.
	mgr, err := cluster.NewManager(cluster.Options{TTL: ttl, Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	mgrSrv, err := transport.NewServer(mgr.Store())
	if err != nil {
		t.Fatal(err)
	}
	mgrSrv.SetClusterHandler(mgr)
	mgrAddr, err := mgrSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgrSrv.Close() })

	// Four storage nodes, each a real listener.
	fleet := make([]*clusterNode, fleetSize)
	for i := range fleet {
		store := transport.NewMemStore()
		srv, err := transport.NewServer(store)
		if err != nil {
			t.Fatal(err)
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		fleet[i] = &clusterNode{id: fmt.Sprintf("node-%d", i), addr: addr, srv: srv, store: store}
	}

	// Heartbeats travel the wire like aestored's loop sends them; the
	// test drives the ticks so liveness follows the fake clock exactly.
	hb, err := transport.Dial(mgrAddr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hb.Close() })
	beatAll := func(except int) {
		t.Helper()
		for i, node := range fleet {
			if i == except {
				continue
			}
			err := hb.NodeStat(ctx, transport.NodeStat{
				ID: node.id, Addr: node.addr,
				Used: int64(node.store.Len() * blockSize),
				Tenants: []transport.TenantUsage{
					{Tenant: "acme", Bytes: int64(100 + i), Blocks: int64(i + 1)},
				},
			})
			if err != nil {
				t.Fatalf("heartbeat %s: %v", node.id, err)
			}
		}
	}
	beatAll(-1)

	// OpUsage aggregates the fleet's per-tenant accounting.
	usage, err := hb.Usage(ctx, "acme")
	if err != nil {
		t.Fatal(err)
	}
	if len(usage) != 1 || usage[0].Bytes != 100+101+102+103 || usage[0].Blocks != 1+2+3+4 {
		t.Fatalf("fleet usage for acme = %+v", usage)
	}

	// The broker knows only the manager: every route comes from the
	// volume table, no flat node list anywhere.
	router, err := cluster.NewRouter(mgrAddr, cluster.RouterOptions{
		User: "alice", VolumeBlocks: volumeBlocks, Conns: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { router.Close() })
	b, err := cooperative.NewRoutedBroker("alice", lattice.Params{Alpha: 3, S: 2, P: 5}, blockSize, router)
	if err != nil {
		t.Fatal(err)
	}

	originals := make([][]byte, n+1)
	for i := 1; i <= n; i++ {
		data := make([]byte, blockSize)
		for j := range data {
			data[j] = byte(i * (j + 1))
		}
		originals[i] = data
		if _, err := b.Backup(ctx, data); err != nil {
			t.Fatalf("Backup(%d): %v", i, err)
		}
	}

	// The backup must have sharded across volumes and nodes.
	table := mgr.TableSnapshot()
	if len(table.Routes) < 2 {
		t.Fatalf("backup created %d volumes, want ≥ 2", len(table.Routes))
	}
	nodesUsed := make(map[string]bool)
	for _, addr := range table.Routes {
		nodesUsed[addr] = true
	}
	if len(nodesUsed) < 3 {
		t.Fatalf("volumes landed on %d nodes, want ≥ 3: %v", len(nodesUsed), table.Routes)
	}
	totalParities := 0
	for _, node := range fleet {
		totalParities += node.store.Len()
	}
	if want := n * 3; totalParities != want {
		t.Fatalf("fleet holds %d parities, want %d", totalParities, want)
	}

	// Reads work across the sharded fleet before any failure.
	b.DropLocal(3)
	got, err := b.Read(ctx, 3)
	if err != nil || !bytes.Equal(got, originals[3]) {
		t.Fatalf("pre-failure Read(3): %v", err)
	}

	// Kill a node that owns at least one volume.
	victim := -1
	for i, node := range fleet {
		if victimOwns(table, node.addr) {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no node owns a volume?")
	}
	lost := fleet[victim].store.Len()
	if lost == 0 {
		t.Fatalf("victim %s owns volumes but holds no parities", fleet[victim].id)
	}
	fleet[victim].srv.Close()

	// Its heartbeats stop; everyone else keeps beating past its TTL.
	clk.Advance(ttl + time.Second)
	beatAll(victim)
	var dead *cluster.NodeInfo
	for _, info := range mgr.Nodes() {
		if info.ID == fleet[victim].id {
			v := info
			dead = &v
		} else if !info.Alive {
			t.Fatalf("survivor %s marked dead", info.ID)
		}
	}
	if dead == nil || dead.Alive {
		t.Fatalf("manager did not mark %s dead: %+v", fleet[victim].id, dead)
	}

	// Repair: enumeration finds the dead node's parities missing, the
	// commit's route failure triggers the stale-hint exchange, the
	// manager re-places those volumes on survivors, and the regenerated
	// parities land there — all through the refreshed epoch.
	epochBefore := router.Epoch()
	stats, err := b.Repair(ctx, entangle.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ParityRepaired < lost {
		t.Errorf("repair regenerated %d parities, want ≥ the %d lost", stats.ParityRepaired, lost)
	}
	if router.Epoch() <= epochBefore {
		t.Errorf("router epoch %d did not advance past %d across re-placement", router.Epoch(), epochBefore)
	}
	after := mgr.TableSnapshot()
	for vol, addr := range after.Routes {
		if addr == fleet[victim].addr {
			t.Errorf("volume %s still routed to dead node after repair", vol)
		}
	}
	if after.Epoch <= table.Epoch {
		t.Errorf("table epoch %d did not advance past %d", after.Epoch, table.Epoch)
	}

	// Every block is still recoverable through the healed fleet.
	for i := 1; i <= n; i++ {
		b.DropLocal(i)
	}
	for i := 1; i <= n; i++ {
		got, err := b.Read(ctx, i)
		if err != nil {
			t.Fatalf("post-failure Read(%d): %v", i, err)
		}
		if !bytes.Equal(got, originals[i]) {
			t.Fatalf("block %d corrupted across node failure", i)
		}
	}
}

func victimOwns(table cluster.Table, addr string) bool {
	for _, a := range table.Routes {
		if a == addr {
			return true
		}
	}
	return false
}
