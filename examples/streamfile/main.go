// Streaming file archival through the root package's Archive API: a
// 8 MiB payload flows through the concurrent encode pipeline into a
// BlockStore with bounded memory (the writer holds at most the pipeline's
// in-flight window of blocks), random damage is repaired, and the exact
// bytes stream back out — including a degraded read that regenerates
// missing blocks on the fly.
//
// Run with:
//
//	go run ./examples/streamfile
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"io"
	"log"
	"math/rand"

	"aecodes"
)

const (
	blockSize   = 4096
	payloadSize = 8 << 20
)

func main() {
	ctx := context.Background()
	params := aecodes.Params{Alpha: 3, S: 2, P: 5}
	store := aecodes.NewMemoryStore(blockSize)

	// Encode: any io.Reader streams in; here an 8 MiB pseudorandom payload.
	// io.Copy hands the writer one bounded buffer at a time — the whole
	// payload is never resident.
	code, err := aecodes.New(params, blockSize)
	if err != nil {
		log.Fatal(err)
	}
	w, err := aecodes.NewArchiveWriterContext(ctx, code, store, aecodes.ArchiveOptions{
		Workers: 4,
		Depth:   4, // in-flight window: ≤ 4×4+2 blocks live at once
	})
	if err != nil {
		log.Fatal(err)
	}
	hasher := sha256.New()
	payload := io.TeeReader(io.LimitReader(rand.New(rand.NewSource(2018)), payloadSize), hasher)
	if _, err := io.Copy(w, payload); err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	wantSum := hasher.Sum(nil)
	fmt.Printf("streamed %d bytes into %d data blocks + %d parities (%v)\n",
		w.Bytes(), w.Blocks(), w.Blocks()*params.Alpha, params)

	// Damage: lose 10% of the data blocks.
	rng := rand.New(rand.NewSource(7))
	lost := 0
	for i := 1; i <= w.Blocks(); i++ {
		if rng.Float64() < 0.10 {
			store.LoseData(i)
			lost++
		}
	}
	fmt.Printf("lost %d data blocks\n", lost)

	// Degraded read: no repair pass — the reader rebuilds each missing
	// block from its strands as the stream crosses it (one XOR each).
	readCode, err := aecodes.New(params, blockSize)
	if err != nil {
		log.Fatal(err)
	}
	hasher.Reset()
	n, err := io.Copy(hasher, aecodes.OpenArchive(readCode, store))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("degraded read: %d bytes, checksum ok = %v\n", n, bytes.Equal(hasher.Sum(nil), wantSum))

	// Whole-system repair puts the lattice itself back to full redundancy;
	// on a batch-native store each round moves as one exchange.
	stats, err := readCode.Repair(ctx, store, aecodes.RepairOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repair: %d data blocks regenerated in %d round(s), data loss = %d\n",
		stats.DataRepaired, stats.Rounds, stats.DataLoss())

	// And the stream still matches.
	verifyCode, err := aecodes.New(params, blockSize)
	if err != nil {
		log.Fatal(err)
	}
	hasher.Reset()
	if _, err := io.Copy(hasher, aecodes.OpenArchive(verifyCode, store)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("post-repair read: checksum ok = %v\n", bytes.Equal(hasher.Sum(nil), wantSum))
}
