package sim

import (
	"fmt"
	"sort"

	"aecodes/internal/lattice"
	"aecodes/internal/placement"
)

// PaperSchemes returns the roster evaluated in §V.C (Table IV): four RS
// settings, the three AE settings, and 2–4-way replication.
func PaperSchemes() ([]Scheme, error) {
	var out []Scheme
	for _, km := range [][2]int{{10, 4}, {8, 2}, {5, 5}, {4, 12}} {
		s, err := NewRS(km[0], km[1])
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	for _, params := range []lattice.Params{
		{Alpha: 1, S: 1, P: 0},
		{Alpha: 2, S: 2, P: 5},
		{Alpha: 3, S: 2, P: 5},
	} {
		s, err := NewAE(params)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	for n := 2; n <= 4; n++ {
		s, err := NewReplication(n)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// TableIVRow is one column of the paper's Table IV.
type TableIVRow struct {
	Scheme            string
	AdditionalStorage float64 // fraction of the data volume
	SingleFailureCost int     // blocks read per single-failure repair
}

// TableIV derives the cost table from a scheme roster.
func TableIV(schemes []Scheme) []TableIVRow {
	rows := make([]TableIVRow, 0, len(schemes))
	for _, s := range schemes {
		rows = append(rows, TableIVRow{
			Scheme:            s.Name(),
			AdditionalStorage: s.AdditionalStorage(),
			SingleFailureCost: s.SingleFailureCost(),
		})
	}
	return rows
}

// StripeSpread reports how many RS stripes have their blocks on a given
// number of distinct locations — the load-balance study of §V.C ("only
// 38,429 had their 14 blocks distributed to different locations…").
// The returned map is keyed by distinct-location count.
func StripeSpread(cfg Config, k, m int) (map[int]int, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if k <= 0 || m <= 0 {
		return nil, fmt.Errorf("sim: RS parameters must be positive, got k=%d m=%d", k, m)
	}
	place, err := newPlacement(cfg)
	if err != nil {
		return nil, err
	}
	width := k + m
	stripes := cfg.DataBlocks / k
	spread := make(map[int]int)
	seen := make(map[int]bool, width)
	for si := 0; si < stripes; si++ {
		for key := range seen {
			delete(seen, key)
		}
		for b := 0; b < width; b++ {
			seen[place.Place(uint64(si)*uint64(width)+uint64(b))] = true
		}
		spread[len(seen)]++
	}
	return spread, nil
}

// SpreadKeys returns the distinct-location counts present in a spread
// histogram, ascending — a convenience for printing.
func SpreadKeys(spread map[int]int) []int {
	keys := make([]int, 0, len(spread))
	for k := range spread {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// BlocksPerLocation returns mean and standard deviation of encoded blocks
// per location for an RS(k,m) workload — the "14,000 blocks per site,
// σ = 130.88" statistic of §V.C.
func BlocksPerLocation(cfg Config, k, m int) (mean, stddev float64, err error) {
	if err := cfg.Validate(); err != nil {
		return 0, 0, err
	}
	if k <= 0 || m <= 0 {
		return 0, 0, fmt.Errorf("sim: RS parameters must be positive, got k=%d m=%d", k, m)
	}
	place, err := newPlacement(cfg)
	if err != nil {
		return 0, 0, err
	}
	width := k + m
	stripes := cfg.DataBlocks / k
	total := uint64(stripes) * uint64(width)
	hist := placement.Histogram(place, total)
	mean, stddev = placement.MeanStddev(hist)
	return mean, stddev, nil
}
