package entangle

import (
	"context"
	"errors"
	"fmt"

	"aecodes/internal/hotpath"
	"aecodes/internal/lattice"
	"aecodes/internal/store"
	"aecodes/internal/xorblock"
)

// Limiter is the rate-limit contract background repair draws from. The
// engine charges actual I/O after it happens (a debt model): Acquire may
// admit the caller into debt and recover before admitting the next one,
// so measured rates converge on the configured ones without the engine
// knowing transfer sizes up front. maintain.Bucket satisfies it.
type Limiter interface {
	// Acquire blocks until the caller may spend ops operations and bytes
	// bytes of repair I/O, or returns ctx's error on cancellation.
	Acquire(ctx context.Context, ops int, bytes int64) error
}

// Scope selects how much of the lattice one Repair call works on.
type Scope int

const (
	// ScopeLattice runs whole-lattice repair rounds to fixpoint — the
	// historical behavior, and the right choice when damage is unknown
	// or widespread. Targets is ignored.
	ScopeLattice Scope = iota
	// ScopeBlock repairs exactly Options.Targets, each from its minimal
	// local repair tuple (one XOR of two fetched blocks), reading
	// nothing beyond the tuples it probes. Targets whose tuples are all
	// incomplete are reported unrepaired, never cascaded.
	ScopeBlock
	// ScopeTuple is ScopeBlock plus one level of tuple completion: when
	// a target data block has no complete pp-tuple, the engine first
	// rebuilds one missing companion parity from its own dp-tuple, then
	// retries the target. This is the background healer's scope — still
	// local reads only, but it converges through single-parity gaps.
	ScopeTuple
)

// Priority tags a repair run for schedulers sharing one rate budget.
// The engine itself treats it as opaque metadata; internal/maintain
// orders contending work by it, highest first.
type Priority int

const (
	// PriorityBackground marks maintenance-initiated repair that must
	// never crowd out client work.
	PriorityBackground Priority = -1
	// PriorityNormal is the default for client-driven repair.
	PriorityNormal Priority = 0
	// PriorityUrgent marks repair of nearly-unrecoverable lattices —
	// health probes found blocks with zero or one intact tuple left.
	PriorityUrgent Priority = 1
)

// meteredSource adapts a backing store into the scoped planner's Source:
// every fetched block is cached for the duration of the call (so tuple
// probes never pay for the same block twice), counted into Stats.BytesRead
// and the process-wide repair-read counter, and charged against the rate
// limiter. Blocks repaired earlier in the same call are visible through
// the cache before the final commit lands. Not safe for concurrent use;
// scoped repair plans serially.
type meteredSource struct {
	src   Source
	limit Limiter
	stats *Stats
	// cache holds fetch results keyed by ref: a nil entry records a miss,
	// so repeated probes of an absent block stay free.
	cache map[store.Ref][]byte
}

var _ Source = (*meteredSource)(nil)

func (m *meteredSource) GetData(ctx context.Context, i int) ([]byte, error) {
	return m.get(ctx, store.DataRef(i))
}

func (m *meteredSource) GetParity(ctx context.Context, e lattice.Edge) ([]byte, error) {
	return m.get(ctx, store.ParityRef(e))
}

func (m *meteredSource) get(ctx context.Context, ref store.Ref) ([]byte, error) {
	if b, ok := m.cache[ref]; ok {
		if b == nil {
			return nil, fmt.Errorf("entangle: %v known missing this pass: %w", ref, store.ErrNotFound)
		}
		return b, nil
	}
	b, err := store.Get(ctx, m.src, ref)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		m.cache[ref] = nil
		return nil, err
	}
	m.cache[ref] = b
	// Virtual-edge reads are synthesized zero blocks, not I/O: cache but
	// do not meter them.
	if !(ref.Parity && ref.Edge.IsVirtual()) {
		m.stats.BytesRead += int64(len(b))
		hotpath.CountRepairRead(len(b))
		if m.limit != nil {
			if err := m.limit.Acquire(ctx, 1, int64(len(b))); err != nil {
				return nil, err
			}
		}
	}
	return b, nil
}

// repairScoped is the ScopeBlock/ScopeTuple engine: repair exactly
// opts.Targets through minimal local tuples, reading lazily from the
// store instead of prefetching whole rounds. All successful repairs
// commit with one PutMany at the end.
func (r *Repairer) repairScoped(ctx context.Context, st Store, opts Options) (Stats, error) {
	var stats Stats
	src := &meteredSource{src: st, limit: opts.RateLimit, stats: &stats, cache: make(map[store.Ref][]byte)}
	var commit []store.Block
	defer func() {
		// Store implementations copy on PutMany (see the Store contract),
		// so the planner's pooled buffers recycle whether the call
		// committed or bailed early.
		for _, b := range commit {
			xorblock.PoolFor(len(b.Data)).Put(b.Data)
		}
	}()
	addFix := func(ref store.Ref, buf []byte) {
		src.cache[ref] = buf
		commit = append(commit, store.Block{Ref: ref, Data: buf})
		if ref.Parity {
			stats.ParityRepaired++
		} else {
			stats.DataRepaired++
		}
	}
	repairOne := func(t store.Ref) ([]byte, error) {
		if t.Parity {
			return r.repairParityPooled(ctx, src, t.Edge)
		}
		return r.repairDataPooled(ctx, src, t.Index)
	}
	for _, t := range opts.Targets {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		if opts.DataOnly && t.Parity {
			continue
		}
		if _, err := src.get(ctx, t); err == nil {
			continue // verified present by the read: nothing to repair
		} else if cerr := ctx.Err(); cerr != nil {
			return stats, cerr
		}
		buf, err := repairOne(t)
		if errors.Is(err, ErrUnrepairable) && opts.Scope == ScopeTuple && !t.Parity {
			if r.healTupleCompanions(ctx, src, t.Index, addFix) {
				buf, err = repairOne(t)
			}
		}
		if errors.Is(err, ErrUnrepairable) {
			if t.Parity {
				stats.UnrepairedParities = append(stats.UnrepairedParities, t.Edge)
			} else {
				stats.UnrepairedData = append(stats.UnrepairedData, t.Index)
			}
			continue
		}
		if err != nil {
			return stats, fmt.Errorf("entangle: repairing %v: %w", t, err)
		}
		addFix(t, buf)
	}
	if len(commit) > 0 {
		var bytes int64
		for _, b := range commit {
			bytes += int64(len(b.Data))
		}
		if opts.RateLimit != nil {
			if err := opts.RateLimit.Acquire(ctx, len(commit), bytes); err != nil {
				return stats, err
			}
		}
		if err := st.PutMany(ctx, commit); err != nil {
			return stats, fmt.Errorf("entangle: committing %d scoped repairs: %w", len(commit), err)
		}
		stats.Rounds = 1
		stats.FirstRoundData = stats.DataRepaired
		stats.PerRound = []RoundStats{{Round: 1, DataRepaired: stats.DataRepaired, ParityRepaired: stats.ParityRepaired}}
	}
	return stats, nil
}

// healTupleCompanions tries to complete one pp-tuple of data block i by
// rebuilding its missing companion parities from their own dp-tuples —
// the single level of cascade ScopeTuple allows. It reports whether some
// tuple of i became complete; repaired parities are recorded through add
// so they commit alongside the target.
func (r *Repairer) healTupleCompanions(ctx context.Context, src *meteredSource, i int, add func(store.Ref, []byte)) bool {
	tuples, err := r.lat.Tuples(i)
	if err != nil {
		return false
	}
	for _, t := range tuples {
		healed, complete := false, true
		for _, e := range [2]lattice.Edge{t.In, t.Out} {
			if e.IsVirtual() {
				continue
			}
			if _, err := src.get(ctx, store.ParityRef(e)); err == nil {
				continue
			}
			if ctx.Err() != nil {
				return false
			}
			buf, rerr := r.repairParityPooled(ctx, src, e)
			if rerr != nil {
				complete = false
				break
			}
			add(store.ParityRef(e), buf)
			healed = true
		}
		if complete && healed {
			return true
		}
	}
	return false
}
