package transport

import (
	"bytes"
	"testing"
)

// FuzzReadRequest feeds arbitrary byte streams to the server-side frame
// parser: it must never panic nor allocate beyond the declared limits,
// whatever a malicious client sends.
func FuzzReadRequest(f *testing.F) {
	// Well-formed seed frames.
	var good bytes.Buffer
	if err := writeRequest(&good, OpPut, "key", []byte("payload")); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	var getFrame bytes.Buffer
	if err := writeRequest(&getFrame, OpGet, "k", nil); err != nil {
		f.Fatal(err)
	}
	f.Add(getFrame.Bytes())
	// Hostile seeds: oversized key length, oversized payload length,
	// truncated frames.
	f.Add([]byte{OpGet, 0xFF, 0xFF})
	f.Add([]byte{OpPut, 0x00, 0x01, 'k', 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{OpDel})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, frame []byte) {
		op, key, payload, err := readRequest(bytes.NewReader(frame))
		if err != nil {
			return // malformed input must just error
		}
		if len(key) > MaxKeyLen {
			t.Fatalf("accepted oversized key (%d bytes)", len(key))
		}
		if len(payload) > MaxPayloadLen {
			t.Fatalf("accepted oversized payload (%d bytes)", len(payload))
		}
		// A successfully parsed frame must re-encode to a parseable frame
		// with identical content.
		var re bytes.Buffer
		if err := writeRequest(&re, op, key, payload); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		op2, key2, payload2, err := readRequest(bytes.NewReader(re.Bytes()))
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if op2 != op || key2 != key || !bytes.Equal(payload2, payload) {
			t.Fatal("frame round trip not stable")
		}
	})
}

// FuzzReadResponse does the same for the client-side parser.
func FuzzReadResponse(f *testing.F) {
	var good bytes.Buffer
	if err := writeResponse(&good, StatusOK, []byte("block")); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add([]byte{StatusError, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{StatusNotFound})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, frame []byte) {
		status, payload, err := readResponse(bytes.NewReader(frame))
		if err != nil {
			return
		}
		if len(payload) > MaxPayloadLen {
			t.Fatalf("accepted oversized payload (%d bytes)", len(payload))
		}
		var re bytes.Buffer
		if err := writeResponse(&re, status, payload); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		status2, payload2, err := readResponse(bytes.NewReader(re.Bytes()))
		if err != nil || status2 != status || !bytes.Equal(payload2, payload) {
			t.Fatal("response round trip not stable")
		}
	})
}
