// The manager's routing service rides the existing wire protocol: a
// Manager exposes its table through a read-only transport.BlockStore
// serving reserved "!cluster/..." keys as JSON over plain OpGet. Brokers
// and operators need no new frame types to route — any client that can
// fetch a block can fetch a route — and the manager binary is just a
// transport.Server over this store with the ClusterHandler attached.
package cluster

import (
	"encoding/json"
	"errors"
	"strconv"
	"strings"

	"aecodes/internal/transport"
)

// Reserved routing keys. The "!" prefix cannot collide with broker
// traffic: block keys are "<user>-d<i>" / "<user>-p<i>-<j>-<class>" and
// tenant IDs reject "!". The stale key puts the epoch before the volume
// because volume IDs contain "/".
const (
	// KeyTable serves the full routing table as JSON (Table).
	KeyTable = "!cluster/table"
	// KeyNodes serves the fleet membership view as JSON ([]NodeInfo).
	KeyNodes = "!cluster/nodes"
	// KeyRoutePrefix + <volume> serves (get-or-create) one volume's
	// placement as JSON (RouteInfo).
	KeyRoutePrefix = "!cluster/route/"
	// KeyStalePrefix + <epoch> + "/" + <volume> reports a routing
	// failure observed at table version <epoch> and serves the fresh
	// placement as JSON (RouteInfo) — the stale-route redirect exchange.
	KeyStalePrefix = "!cluster/stale/"
)

// StaleKey builds the stale-hint key for a volume observed failing at
// the given table epoch.
func StaleKey(epoch uint64, vol string) string {
	return KeyStalePrefix + strconv.FormatUint(epoch, 10) + "/" + vol
}

// managerStore adapts a Manager to transport.BlockStore. Reads answer
// routing queries; writes are refused — the routing table changes only
// through heartbeats and stale hints, never through block traffic.
type managerStore struct {
	m *Manager
}

// Store returns the manager's routing table as a read-only BlockStore
// for a transport.Server to serve.
func (m *Manager) Store() transport.BlockStore {
	return managerStore{m: m}
}

// Get implements transport.BlockStore: answer a reserved routing key.
// Unknown keys — and routing queries the manager cannot satisfy, such
// as placement with no live nodes — report not-found.
func (s managerStore) Get(key string) ([]byte, bool) {
	switch {
	case key == KeyTable:
		return jsonOrMiss(s.m.TableSnapshot())
	case key == KeyNodes:
		return jsonOrMiss(s.m.Nodes())
	case strings.HasPrefix(key, KeyRoutePrefix):
		ri, err := s.m.Route(key[len(KeyRoutePrefix):])
		if err != nil {
			return nil, false
		}
		return jsonOrMiss(ri)
	case strings.HasPrefix(key, KeyStalePrefix):
		rest := key[len(KeyStalePrefix):]
		slash := strings.IndexByte(rest, '/')
		if slash < 0 {
			return nil, false
		}
		epoch, err := strconv.ParseUint(rest[:slash], 10, 64)
		if err != nil {
			return nil, false
		}
		ri, err := s.m.MarkStale(rest[slash+1:], epoch)
		if err != nil {
			return nil, false
		}
		return jsonOrMiss(ri)
	}
	return nil, false
}

// Put implements transport.BlockStore: the routing service is read-only.
func (s managerStore) Put(key string, data []byte) error {
	return errors.New("cluster: the manager stores routes, not blocks")
}

// Del implements transport.BlockStore: nothing to delete, nothing done.
func (s managerStore) Del(key string) {}

func jsonOrMiss(v any) ([]byte, bool) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, false
	}
	return data, true
}
