package main

import (
	"testing"

	"aecodes/internal/benchfmt"
)

func doc(results ...benchfmt.Result) benchfmt.Document {
	return benchfmt.Document{Results: results}
}

func TestCompareFlagsOnlyRealRegressions(t *testing.T) {
	baseline := doc(
		benchfmt.Result{Experiment: "encode", Name: "sequential", MBps: 2000},
		benchfmt.Result{Experiment: "encode", Name: "pipelined", MBps: 2800},
		benchfmt.Result{Experiment: "repair", Name: "workers=1", MBps: 1100},
	)
	current := doc(
		benchfmt.Result{Experiment: "encode", Name: "sequential", MBps: 1800}, // -10%: within tolerance
		benchfmt.Result{Experiment: "encode", Name: "pipelined", MBps: 900},   // -68%: regression
		benchfmt.Result{Experiment: "repair", Name: "workers=1", MBps: 1300},  // improvement
	)
	findings, onlyB, onlyC := compare(baseline, current, 0.5)
	if len(onlyB) != 0 || len(onlyC) != 0 {
		t.Fatalf("unmatched keys: %v / %v", onlyB, onlyC)
	}
	if len(findings) != 3 {
		t.Fatalf("got %d findings, want 3", len(findings))
	}
	byKey := map[string]bool{}
	for _, f := range findings {
		byKey[f.Key] = f.Regression
	}
	if byKey["encode/sequential"] {
		t.Error("a drop within tolerance was flagged")
	}
	if !byKey["encode/pipelined"] {
		t.Error("a 68% drop was not flagged at 50% tolerance")
	}
	if byKey["repair/workers=1"] {
		t.Error("an improvement was flagged")
	}
}

// TestCompareTakesBestSample pins that repeated measurements for one key
// (aebench records the repair experiment once per worker setting, and
// some settings repeat) fold to the best MB/s on both sides, so one
// noisy sample cannot fake or mask a regression.
func TestCompareTakesBestSample(t *testing.T) {
	baseline := doc(
		benchfmt.Result{Experiment: "repair", Name: "workers=1", MBps: 1100},
		benchfmt.Result{Experiment: "repair", Name: "workers=1", MBps: 1500},
	)
	current := doc(
		benchfmt.Result{Experiment: "repair", Name: "workers=1", MBps: 400},
		benchfmt.Result{Experiment: "repair", Name: "workers=1", MBps: 1400},
	)
	findings, _, _ := compare(baseline, current, 0.5)
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1", len(findings))
	}
	f := findings[0]
	if f.Baseline != 1500 || f.Current != 1400 {
		t.Fatalf("best-sample folding wrong: %+v", f)
	}
	if f.Regression {
		t.Error("1400 vs 1500 at 50% tolerance flagged as regression")
	}
}

// TestCompareIgnoresWallOnlyEntries pins that wall-time-only records
// (mb_s absent) never produce findings.
func TestCompareIgnoresWallOnlyEntries(t *testing.T) {
	baseline := doc(
		benchfmt.Result{Experiment: "encode", Name: "wall"},
		benchfmt.Result{Experiment: "encode", Name: "sequential", MBps: 2000},
	)
	current := doc(
		benchfmt.Result{Experiment: "encode", Name: "wall"},
	)
	findings, onlyB, onlyC := compare(baseline, current, 0.5)
	if len(findings) != 0 {
		t.Fatalf("wall-only entries compared: %+v", findings)
	}
	if len(onlyB) != 1 || onlyB[0] != "encode/sequential" {
		t.Fatalf("missing-measurement reporting wrong: %v", onlyB)
	}
	if len(onlyC) != 0 {
		t.Fatalf("phantom current keys: %v", onlyC)
	}
}

func TestCompareReportsNewMeasurements(t *testing.T) {
	baseline := doc(benchfmt.Result{Experiment: "encode", Name: "sequential", MBps: 2000})
	current := doc(
		benchfmt.Result{Experiment: "encode", Name: "sequential", MBps: 2100},
		benchfmt.Result{Experiment: "xor", Name: "kernel", MBps: 9000},
	)
	_, _, onlyC := compare(baseline, current, 0.5)
	if len(onlyC) != 1 || onlyC[0] != "xor/kernel" {
		t.Fatalf("new measurement not reported: %v", onlyC)
	}
}
