package entangle

import (
	"context"
	"fmt"
	"sort"

	"aecodes/internal/lattice"
	"aecodes/internal/store"
)

// Health is one lattice's repair-urgency snapshot: the raw missing-block
// enumeration plus, for every missing data block, how many of its α
// repair tuples are still complete. The maintain scheduler, the Broker,
// and aecluster all consume this one shape instead of ad-hoc
// Missing+Count pairs.
type Health struct {
	// Blocks is the data-block count the probe covered.
	Blocks int
	// Missing is the enumeration the probe ran — one Missing call; no
	// block contents move for a health check.
	Missing store.Missing
	// IntactTuples maps each missing data position to how many of its α
	// pp-tuples still have both parities readable (virtual edges count
	// as present: they read as zero blocks). Zero means the block is
	// unrepairable by local tuples until a companion parity heals.
	IntactTuples map[int]int
	// Score is the healing urgency: Σ over missing data blocks of
	// 1/(1+intact tuples). A block with no intact tuple contributes 1,
	// one with all α tuples intact contributes 1/(1+α) — so the score
	// weighs how close each loss is to unrecoverable, not just how many
	// blocks are gone. Zero means healthy.
	Score float64
}

// Healthy reports whether nothing is missing.
func (h Health) Healthy() bool { return h.Missing.Empty() }

// MissingData returns the missing data-block count.
func (h Health) MissingData() int { return len(h.Missing.Data) }

// MissingParities returns the missing parity count.
func (h Health) MissingParities() int { return len(h.Missing.Parities) }

// FragileFirst returns the missing data positions ordered most-urgent
// first: fewest intact repair tuples, ties broken by position. This is
// the healer's work queue — blocks one failure away from permanent loss
// come first.
func (h Health) FragileFirst() []int {
	out := append([]int(nil), h.Missing.Data...)
	sort.Slice(out, func(a, b int) bool {
		ia, ib := h.IntactTuples[out[a]], h.IntactTuples[out[b]]
		if ia != ib {
			return ia < ib
		}
		return out[a] < out[b]
	})
	return out
}

// Health probes st with one Missing enumeration and scores the damage
// with pure lattice geometry. blocks is the expected data-block count
// (recorded in the result; the store's own enumeration bounds the scan).
func (r *Repairer) Health(ctx context.Context, st store.Single, blocks int) (Health, error) {
	m, err := st.Missing(ctx)
	if err != nil {
		return Health{}, fmt.Errorf("entangle: health probe: %w", err)
	}
	h := Health{
		Blocks:       blocks,
		Missing:      m,
		IntactTuples: make(map[int]int, len(m.Data)),
	}
	missPar := make(map[edgeKey]bool, len(m.Parities))
	for _, e := range m.Parities {
		missPar[keyOf(e)] = true
	}
	missData := make(map[int]bool, len(m.Data))
	for _, i := range m.Data {
		missData[i] = true
	}
	present := func(e lattice.Edge) bool {
		return e.IsVirtual() || !missPar[keyOf(e)]
	}
	for _, i := range m.Data {
		tuples, err := r.lat.Tuples(i)
		if err != nil {
			return Health{}, err
		}
		intact := 0
		for _, t := range tuples {
			if present(t.In) && present(t.Out) {
				intact++
			}
		}
		h.IntactTuples[i] = intact
		h.Score += 1 / float64(1+intact)
	}
	// Missing parities contribute too, at the weight of their weakest
	// dp-tuple: a parity with both options broken is as urgent as an
	// isolated data loss; one with an option intact is cheap to heal.
	for _, e := range m.Parities {
		opts, err := r.lat.ParityOptions(e)
		if err != nil {
			return Health{}, err
		}
		intact := 0
		for _, opt := range opts {
			if !missData[opt.Data] && present(opt.Parity) {
				intact++
			}
		}
		h.Score += 0.5 / float64(1+intact)
	}
	return h, nil
}
